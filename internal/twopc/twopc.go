// Package twopc implements two-phase commit across Spitz processor nodes.
// Section 5.2: "The solution is to add distributed transactions to each
// node, and follow the two-phase commit (2PC) protocol to coordinate each
// transaction so that transactions committed by different nodes can be
// made serializable."
//
// A Coordinator drives Prepare/Commit/Abort over named participants (one
// per shard). Prepare validates the transaction's reads against the
// shard's store and takes shared locks on read keys and exclusive locks
// on write keys; any conflict is a vote to abort, and the coordinator
// rolls back every prepared participant when any vote fails. Locks are
// never waited on — conflicting prepares abort immediately, so the
// protocol cannot deadlock.
package twopc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"spitz/internal/obs"
	"spitz/internal/txn"
)

// 2PC outcome counters. Aborts split by cause: "conflict" is the
// expected OCC/lock outcome under contention, "error" is anything else
// (store failures, poisoned engines) and deserves alerting.
var (
	mPrepares       = obs.Default.Counter("spitz_twopc_prepares_total")
	mCommits        = obs.Default.Counter("spitz_twopc_commits_total")
	mAbortsConflict = obs.Default.Counter(`spitz_twopc_aborts_total{cause="conflict"}`)
	mAbortsError    = obs.Default.Counter(`spitz_twopc_aborts_total{cause="error"}`)
)

// ErrAborted is returned when a distributed transaction fails to prepare
// on every shard and is rolled back.
var ErrAborted = errors.New("twopc: transaction aborted")

// Participant is one shard's interface in the protocol.
type Participant interface {
	// Prepare validates the shard-local reads and locks the read and
	// write keys of the transaction's portion. An error is a vote to
	// abort.
	Prepare(txnID uint64, req Request) error
	// Commit applies a prepared transaction and releases its locks.
	// version is the coordinator's global commit timestamp; stores that
	// allocate their own versions (txn.AsyncStore) may commit at a local
	// version instead. Commit must succeed for prepared transactions.
	Commit(txnID uint64, version uint64) error
	// Abort releases a prepared (or never-prepared) transaction's locks.
	Abort(txnID uint64) error
}

// Coordinator runs 2PC over a set of named shards.
type Coordinator struct {
	mu     sync.Mutex
	shards map[string]Participant
	ts     txn.TimestampSource
	nextID uint64

	commits int64
	aborts  int64
}

// NewCoordinator returns a coordinator allocating commit timestamps from
// ts.
func NewCoordinator(ts txn.TimestampSource) *Coordinator {
	return &Coordinator{shards: make(map[string]Participant), ts: ts}
}

// Register adds a shard.
func (c *Coordinator) Register(name string, p Participant) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards[name] = p
}

// Stats returns commit and abort counts.
func (c *Coordinator) Stats() (commits, aborts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

// Request carries one shard's portion of a distributed transaction.
type Request struct {
	Shard     string
	Statement string            // audited statement recorded in the shard's ledger
	Reads     map[string]uint64 // key -> version observed during execution
	Writes    []txn.Write
}

// Execute runs the two phases. On success every shard has committed and
// the coordinator's commit timestamp is returned. On abort, ErrAborted
// wraps the first failing shard's vote.
func (c *Coordinator) Execute(reqs []Request) (uint64, error) {
	return c.ExecuteTraced(nil, reqs)
}

// ExecuteTraced is Execute carrying the request's trace: each shard's
// prepare and commit leg records a child span, so a stitched timeline
// shows which participant a cross-shard write was waiting on.
func (c *Coordinator) ExecuteTraced(tr *obs.Trace, reqs []Request) (uint64, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	parts := make([]Participant, len(reqs))
	for i, r := range reqs {
		p, ok := c.shards[r.Shard]
		if !ok {
			c.mu.Unlock()
			return 0, fmt.Errorf("twopc: unknown shard %q", r.Shard)
		}
		parts[i] = p
	}
	c.mu.Unlock()

	// Phase 1: prepare all shards in parallel.
	mPrepares.Add(uint64(len(reqs)))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leg := tr.ChildAt("twopc.prepare", reqs[i].Shard)
			errs[i] = parts[i].Prepare(id, reqs[i])
			leg.Finish()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Roll back every shard (including non-prepared ones; Abort is
			// idempotent).
			for j := range reqs {
				_ = parts[j].Abort(id)
			}
			c.mu.Lock()
			c.aborts++
			c.mu.Unlock()
			if errors.Is(err, txn.ErrConflict) {
				mAbortsConflict.Inc()
			} else {
				mAbortsError.Inc()
			}
			return 0, fmt.Errorf("%w: shard %q: %v", ErrAborted, reqs[i].Shard, err)
		}
	}

	// Phase 2: commit everywhere, in parallel — each shard's commit may
	// wait on its own durability (WAL fsync), and those waits overlap.
	version := c.ts.Next()
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leg := tr.ChildAt("twopc.commit", reqs[i].Shard)
			errs[i] = parts[i].Commit(id, version)
			leg.Finish()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// A prepared participant failing to commit is a broken
			// invariant; surface it loudly rather than half-committing.
			return 0, fmt.Errorf("twopc: shard %q failed prepared commit: %v", reqs[i].Shard, err)
		}
	}
	c.mu.Lock()
	c.commits++
	c.mu.Unlock()
	mCommits.Inc()
	return version, nil
}

// preparedTxn is one transaction's footprint on a participant between
// Prepare and Commit/Abort.
type preparedTxn struct {
	statement string
	reads     []string
	writes    []txn.Write
}

// ShardParticipant is the standard Participant over a txn.Store: reads
// are validated against the store itself (so writes reaching the store
// outside this participant — bulk ingest, recovery — are still
// detected), read keys take shared locks and write keys exclusive locks
// between Prepare and Commit/Abort. The locks close the classic 2PC
// window: between a transaction's validation and its commit, no other
// distributed transaction can write what it read or read/write what it
// writes.
type ShardParticipant struct {
	mu       sync.Mutex
	store    txn.Store
	locks    map[string]uint64              // write key -> txn holding the exclusive lock
	readers  map[string]map[uint64]struct{} // read key -> txns holding shared locks
	prepared map[uint64]*preparedTxn
}

// NewShardParticipant returns a participant over store.
func NewShardParticipant(store txn.Store) *ShardParticipant {
	return &ShardParticipant{
		store:    store,
		locks:    make(map[string]uint64),
		readers:  make(map[string]map[uint64]struct{}),
		prepared: make(map[uint64]*preparedTxn),
	}
}

// Prepare implements Participant.
func (s *ShardParticipant) Prepare(txnID uint64, req Request) error {
	reads, writes := req.Reads, req.Writes
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.prepared[txnID]; dup {
		return fmt.Errorf("twopc: txn %d already prepared", txnID)
	}
	// Deterministic validation order keeps conflict errors stable.
	readKeys := make([]string, 0, len(reads))
	for key := range reads {
		readKeys = append(readKeys, key)
	}
	sort.Strings(readKeys)

	p := &preparedTxn{statement: req.Statement, writes: writes}
	release := func() {
		s.releaseLocked(txnID, p)
	}
	// Validate reads (OCC backward validation against the store's current
	// state) and take shared locks so no later-preparing transaction can
	// overwrite them before we commit.
	for _, key := range readKeys {
		if holder, locked := s.locks[key]; locked && holder != txnID {
			release()
			return txn.ErrConflict // read key being written by another txn
		}
		_, cur, _, err := s.store.ReadLatest([]byte(key), ^uint64(0))
		if err != nil {
			release()
			return err
		}
		if cur != reads[key] {
			release()
			return txn.ErrConflict
		}
		set := s.readers[key]
		if set == nil {
			set = make(map[uint64]struct{})
			s.readers[key] = set
		}
		set[txnID] = struct{}{}
		p.reads = append(p.reads, key)
	}
	// Lock write keys exclusively: conflict with other writers and with
	// other transactions' shared read locks.
	for _, w := range writes {
		key := string(w.Key)
		if holder, locked := s.locks[key]; locked && holder != txnID {
			release()
			return txn.ErrConflict
		}
		for reader := range s.readers[key] {
			if reader != txnID {
				release()
				return txn.ErrConflict
			}
		}
		s.locks[key] = txnID
	}
	s.prepared[txnID] = p
	return nil
}

// releaseLocked drops every lock a transaction holds. Caller holds s.mu.
func (s *ShardParticipant) releaseLocked(txnID uint64, p *preparedTxn) {
	for _, key := range p.reads {
		if set := s.readers[key]; set != nil {
			delete(set, txnID)
			if len(set) == 0 {
				delete(s.readers, key)
			}
		}
	}
	for _, w := range p.writes {
		if s.locks[string(w.Key)] == txnID {
			delete(s.locks, string(w.Key))
		}
	}
}

// Commit implements Participant. With a plain Store the writes apply at
// the coordinator's version; with a txn.AsyncStore (the Spitz engine) the
// store allocates its own commit version at enqueue time — per-shard
// version ordering then cannot be violated by two coordinators (or a
// coordinator racing local commits) reaching one shard out of timestamp
// order, and the enqueue makes the writes visible to later validations
// before the locks release.
func (s *ShardParticipant) Commit(txnID uint64, version uint64) error {
	s.mu.Lock()
	p, ok := s.prepared[txnID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("twopc: commit of unprepared txn %d", txnID)
	}
	if as, isAsync := s.store.(txn.AsyncStore); isAsync && len(p.writes) > 0 {
		var wait func() error
		var err error
		if ss, ok := s.store.(txn.StatementStore); ok && p.statement != "" {
			_, wait, err = ss.ApplyStatementAsync(p.statement, p.writes)
		} else {
			_, wait, err = as.ApplyBatchAsync(p.writes)
		}
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.releaseLocked(txnID, p)
		delete(s.prepared, txnID)
		s.mu.Unlock()
		// The writes are enqueued and visible; only durability is pending.
		// Waiting outside the lock lets concurrent commits share the
		// store's group-commit machinery.
		return wait()
	}
	if len(p.writes) > 0 {
		if err := s.store.ApplyBatch(version, p.writes); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.releaseLocked(txnID, p)
	delete(s.prepared, txnID)
	s.mu.Unlock()
	return nil
}

// Abort implements Participant. It is idempotent and safe to call for
// transactions that never prepared on this shard.
func (s *ShardParticipant) Abort(txnID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.prepared[txnID]
	if !ok {
		return nil
	}
	s.releaseLocked(txnID, p)
	delete(s.prepared, txnID)
	return nil
}

// ReadLatest reads through to the underlying store, reporting the version
// for use in Request.Reads.
func (s *ShardParticipant) ReadLatest(key []byte, asOf uint64) ([]byte, uint64, bool, error) {
	return s.store.ReadLatest(key, asOf)
}
