// Package twopc implements two-phase commit across Spitz processor nodes.
// Section 5.2: "The solution is to add distributed transactions to each
// node, and follow the two-phase commit (2PC) protocol to coordinate each
// transaction so that transactions committed by different nodes can be
// made serializable."
//
// A Coordinator drives Prepare/Commit/Abort over named participants (one
// per shard); conflicting prepares vote abort, and the coordinator rolls
// back every prepared participant when any vote fails.
package twopc

import (
	"errors"
	"fmt"
	"sync"

	"spitz/internal/txn"
)

// ErrAborted is returned when a distributed transaction fails to prepare
// on every shard and is rolled back.
var ErrAborted = errors.New("twopc: transaction aborted")

// Participant is one shard's interface in the protocol.
type Participant interface {
	// Prepare validates the shard-local reads and locks the write keys.
	// An error is a vote to abort.
	Prepare(txnID uint64, reads map[string]uint64, writes []txn.Write) error
	// Commit applies a prepared transaction at the given version and
	// releases its locks. Commit must succeed for prepared transactions.
	Commit(txnID uint64, version uint64) error
	// Abort releases a prepared (or never-prepared) transaction's locks.
	Abort(txnID uint64) error
}

// Coordinator runs 2PC over a set of named shards.
type Coordinator struct {
	mu     sync.Mutex
	shards map[string]Participant
	ts     txn.TimestampSource
	nextID uint64

	commits int64
	aborts  int64
}

// NewCoordinator returns a coordinator allocating commit versions from ts.
func NewCoordinator(ts txn.TimestampSource) *Coordinator {
	return &Coordinator{shards: make(map[string]Participant), ts: ts}
}

// Register adds a shard.
func (c *Coordinator) Register(name string, p Participant) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards[name] = p
}

// Stats returns commit and abort counts.
func (c *Coordinator) Stats() (commits, aborts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

// Request carries one shard's portion of a distributed transaction.
type Request struct {
	Shard  string
	Reads  map[string]uint64 // key -> version observed during execution
	Writes []txn.Write
}

// Execute runs the two phases. On success every shard has committed at the
// same version, which is returned. On abort, ErrAborted wraps the first
// failing shard's vote.
func (c *Coordinator) Execute(reqs []Request) (uint64, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	parts := make([]Participant, len(reqs))
	for i, r := range reqs {
		p, ok := c.shards[r.Shard]
		if !ok {
			c.mu.Unlock()
			return 0, fmt.Errorf("twopc: unknown shard %q", r.Shard)
		}
		parts[i] = p
	}
	c.mu.Unlock()

	// Phase 1: prepare all shards in parallel.
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = parts[i].Prepare(id, reqs[i].Reads, reqs[i].Writes)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Roll back every shard (including non-prepared ones; Abort is
			// idempotent).
			for j := range reqs {
				_ = parts[j].Abort(id)
			}
			c.mu.Lock()
			c.aborts++
			c.mu.Unlock()
			return 0, fmt.Errorf("%w: shard %q: %v", ErrAborted, reqs[i].Shard, err)
		}
	}

	// Phase 2: commit everywhere at one version.
	version := c.ts.Next()
	for i := range reqs {
		if err := parts[i].Commit(id, version); err != nil {
			// A prepared participant failing to commit is a broken
			// invariant; surface it loudly rather than half-committing.
			return 0, fmt.Errorf("twopc: shard %q failed prepared commit: %v", reqs[i].Shard, err)
		}
	}
	c.mu.Lock()
	c.commits++
	c.mu.Unlock()
	return version, nil
}

// ShardParticipant is the standard Participant over a txn.Store: OCC
// validation of reads plus write-key locking between Prepare and
// Commit/Abort.
type ShardParticipant struct {
	mu        sync.Mutex
	store     txn.Store
	locks     map[string]uint64 // key -> txn holding the lock
	prepared  map[uint64][]txn.Write
	lastWrite map[string]uint64
}

// NewShardParticipant returns a participant over store.
func NewShardParticipant(store txn.Store) *ShardParticipant {
	return &ShardParticipant{
		store:     store,
		locks:     make(map[string]uint64),
		prepared:  make(map[uint64][]txn.Write),
		lastWrite: make(map[string]uint64),
	}
}

// Prepare implements Participant.
func (s *ShardParticipant) Prepare(txnID uint64, reads map[string]uint64, writes []txn.Write) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.prepared[txnID]; dup {
		return fmt.Errorf("twopc: txn %d already prepared", txnID)
	}
	// Validate reads (OCC backward validation against committed state).
	for key, seen := range reads {
		if s.lastWrite[key] != seen {
			return txn.ErrConflict
		}
		if holder, locked := s.locks[key]; locked && holder != txnID {
			return txn.ErrConflict // read key being written by another txn
		}
	}
	// Lock write keys.
	acquired := make([]string, 0, len(writes))
	for _, w := range writes {
		key := string(w.Key)
		if holder, locked := s.locks[key]; locked && holder != txnID {
			for _, k := range acquired {
				delete(s.locks, k)
			}
			return txn.ErrConflict
		}
		s.locks[key] = txnID
		acquired = append(acquired, key)
	}
	s.prepared[txnID] = writes
	return nil
}

// Commit implements Participant.
func (s *ShardParticipant) Commit(txnID uint64, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	writes, ok := s.prepared[txnID]
	if !ok {
		return fmt.Errorf("twopc: commit of unprepared txn %d", txnID)
	}
	if err := s.store.ApplyBatch(version, writes); err != nil {
		return err
	}
	for _, w := range writes {
		s.lastWrite[string(w.Key)] = version
		delete(s.locks, string(w.Key))
	}
	delete(s.prepared, txnID)
	return nil
}

// Abort implements Participant. It is idempotent and safe to call for
// transactions that never prepared on this shard.
func (s *ShardParticipant) Abort(txnID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	writes, ok := s.prepared[txnID]
	if !ok {
		return nil
	}
	for _, w := range writes {
		if s.locks[string(w.Key)] == txnID {
			delete(s.locks, string(w.Key))
		}
	}
	delete(s.prepared, txnID)
	return nil
}

// ReadLatest reads through to the underlying store, reporting the version
// for use in Request.Reads.
func (s *ShardParticipant) ReadLatest(key []byte, asOf uint64) ([]byte, uint64, bool, error) {
	return s.store.ReadLatest(key, asOf)
}
