package twopc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"spitz/internal/txn"
	"spitz/internal/txn/tso"
)

func setup() (*Coordinator, *ShardParticipant, *ShardParticipant, *txn.MemStore, *txn.MemStore) {
	ts := tso.New(0)
	sa, sb := txn.NewMemStore(), txn.NewMemStore()
	pa, pb := NewShardParticipant(sa), NewShardParticipant(sb)
	c := NewCoordinator(ts)
	c.Register("a", pa)
	c.Register("b", pb)
	return c, pa, pb, sa, sb
}

func TestCommitAcrossShards(t *testing.T) {
	c, _, _, sa, sb := setup()
	v, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got, ver, ok, _ := sa.ReadLatest([]byte("x"), v)
	if !ok || string(got) != "1" || ver != v {
		t.Fatal("shard a write missing")
	}
	got, ver, ok, _ = sb.ReadLatest([]byte("y"), v)
	if !ok || string(got) != "2" || ver != v {
		t.Fatal("shard b write missing")
	}
	commits, aborts := c.Stats()
	if commits != 1 || aborts != 0 {
		t.Fatalf("stats = %d/%d", commits, aborts)
	}
}

func TestUnknownShard(t *testing.T) {
	c, _, _, _, _ := setup()
	if _, err := c.Execute([]Request{{Shard: "nope"}}); err == nil {
		t.Fatal("unknown shard accepted")
	}
}

func TestAbortRollsBackAllShards(t *testing.T) {
	c, pa, _, sa, sb := setup()
	// Hold a lock on shard a's key x via a prepared-but-unfinished txn.
	if err := pa.Prepare(999, Request{Writes: []txn.Write{{Key: []byte("x"), Value: []byte("held")}}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
	// Neither shard applied anything.
	if _, _, ok, _ := sa.ReadLatest([]byte("x"), ^uint64(0)); ok {
		t.Fatal("aborted write visible on shard a")
	}
	if _, _, ok, _ := sb.ReadLatest([]byte("y"), ^uint64(0)); ok {
		t.Fatal("aborted write visible on shard b")
	}
	// Shard b's lock must have been released: a retry succeeds after the
	// blocker aborts.
	pa.Abort(999)
	if _, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestReadValidationAbort(t *testing.T) {
	c, pa, _, _, _ := setup()
	// Commit an initial value so lastWrite is nonzero.
	if _, err := c.Execute([]Request{{Shard: "a",
		Writes: []txn.Write{{Key: []byte("x"), Value: []byte("v1")}}}}); err != nil {
		t.Fatal(err)
	}
	// A transaction that read x at version 0 (stale) must abort.
	_, err := c.Execute([]Request{{Shard: "a",
		Reads:  map[string]uint64{"x": 0},
		Writes: []txn.Write{{Key: []byte("z"), Value: []byte("out")}}}})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
	// Reading the current version succeeds.
	_, ver, _, _ := pa.ReadLatest([]byte("x"), ^uint64(0))
	if _, err := c.Execute([]Request{{Shard: "a",
		Reads:  map[string]uint64{"x": ver},
		Writes: []txn.Write{{Key: []byte("z"), Value: []byte("out")}}}}); err != nil {
		t.Fatalf("fresh read aborted: %v", err)
	}
}

func TestLocksReleasedAfterCommit(t *testing.T) {
	c, _, _, _, _ := setup()
	for i := 0; i < 5; i++ {
		if _, err := c.Execute([]Request{{Shard: "a",
			Writes: []txn.Write{{Key: []byte("same-key"), Value: []byte{byte(i)}}}}}); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestPrepareConflictOnReadLock(t *testing.T) {
	_, pa, _, _, _ := setup()
	if err := pa.Prepare(1, Request{Writes: []txn.Write{{Key: []byte("k"), Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	// Another txn reading the locked key must vote abort.
	err := pa.Prepare(2, Request{Reads: map[string]uint64{"k": 0}})
	if !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("read of locked key prepared: %v", err)
	}
	pa.Abort(1)
}

// TestWriteConflictsWithReadLock: a transaction that read key k holds a
// shared lock until it resolves; a second transaction preparing a write
// of k must vote abort, or the first transaction's validated read could
// be overwritten before its commit point.
func TestWriteConflictsWithReadLock(t *testing.T) {
	c, pa, _, _, _ := setup()
	if _, err := c.Execute([]Request{{Shard: "a",
		Writes: []txn.Write{{Key: []byte("k"), Value: []byte("v0")}}}}); err != nil {
		t.Fatal(err)
	}
	_, ver, _, _ := pa.ReadLatest([]byte("k"), ^uint64(0))
	if err := pa.Prepare(10, Request{Reads: map[string]uint64{"k": ver}}); err != nil {
		t.Fatalf("reader prepare: %v", err)
	}
	err := pa.Prepare(11, Request{Writes: []txn.Write{{Key: []byte("k"), Value: []byte("v1")}}})
	if !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("write under shared read lock prepared: %v", err)
	}
	// Once the reader resolves, the writer goes through.
	pa.Abort(10)
	if err := pa.Prepare(11, Request{Writes: []txn.Write{{Key: []byte("k"), Value: []byte("v1")}}}); err != nil {
		t.Fatalf("retry after reader resolved: %v", err)
	}
	pa.Abort(11)
}

// TestCoordinatorAbortAfterPartialPrepare: shard a prepares successfully,
// shard b votes abort on stale-read validation; the coordinator must
// roll shard a back, releasing its locks and applying nothing.
func TestCoordinatorAbortAfterPartialPrepare(t *testing.T) {
	c, _, pb, sa, _ := setup()
	// Make shard b's read stale.
	if _, err := c.Execute([]Request{{Shard: "b",
		Writes: []txn.Write{{Key: []byte("y"), Value: []byte("fresh")}}}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Reads: map[string]uint64{"y": 0}, // stale: y was written above
			Writes: []txn.Write{{Key: []byte("z"), Value: []byte("2")}}},
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("partial prepare committed: %v", err)
	}
	if _, _, ok, _ := sa.ReadLatest([]byte("x"), ^uint64(0)); ok {
		t.Fatal("aborted write applied on prepared shard a")
	}
	// Shard a's write lock and shard b's read state released: both retry
	// paths succeed.
	_, ver, _, _ := pb.ReadLatest([]byte("y"), ^uint64(0))
	if _, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Reads: map[string]uint64{"y": ver},
			Writes: []txn.Write{{Key: []byte("z"), Value: []byte("2")}}},
	}); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	_, aborts := c.Stats()
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
}

// TestConcurrentContendedTransactions is the race-detector stress for the
// protocol layer itself: many goroutines run read-modify-write
// transactions that all contend on a small shared key set spanning both
// shards. Every increment that commits must be present in the final
// counts.
func TestConcurrentContendedTransactions(t *testing.T) {
	c, pa, pb, _, _ := setup()
	keys := []struct {
		shard string
		p     *ShardParticipant
		key   string
	}{
		{"a", pa, "k0"}, {"a", pa, "k1"}, {"b", pb, "k0"}, {"b", pb, "k1"},
	}
	for _, k := range keys {
		if _, err := c.Execute([]Request{{Shard: k.shard,
			Writes: []txn.Write{{Key: []byte(k.key), Value: enc(0)}}}}); err != nil {
			t.Fatal(err)
		}
	}

	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				ka := keys[(g+i)%2]   // shard a key
				kb := keys[2+(g+i)%2] // shard b key
				av, aver, aok, err := ka.p.ReadLatest([]byte(ka.key), ^uint64(0))
				if err != nil || !aok {
					t.Errorf("read: %v", err)
					return
				}
				bv, bver, bok, err := kb.p.ReadLatest([]byte(kb.key), ^uint64(0))
				if err != nil || !bok {
					t.Errorf("read: %v", err)
					return
				}
				_, err = c.Execute([]Request{
					{Shard: ka.shard, Reads: map[string]uint64{ka.key: aver},
						Writes: []txn.Write{{Key: []byte(ka.key), Value: enc(dec(av) + 1)}}},
					{Shard: kb.shard, Reads: map[string]uint64{kb.key: bver},
						Writes: []txn.Write{{Key: []byte(kb.key), Value: enc(dec(bv) + 1)}}},
				})
				if err == nil {
					mu.Lock()
					committed += 2
					mu.Unlock()
				} else if !errors.Is(err, ErrAborted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, k := range keys {
		v, _, ok, _ := k.p.ReadLatest([]byte(k.key), ^uint64(0))
		if !ok {
			t.Fatalf("key %s/%s missing", k.shard, k.key)
		}
		total += int64(dec(v))
	}
	if total != committed {
		t.Fatalf("increments applied = %d, committed = %d (lost or phantom updates)", total, committed)
	}
	commits, aborts := c.Stats()
	t.Logf("contended stress: %d commits, %d aborts", commits, aborts)
	if commits == 0 {
		t.Fatal("nothing committed under contention")
	}
}

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func TestCommitUnpreparedFails(t *testing.T) {
	_, pa, _, _, _ := setup()
	if err := pa.Commit(42, 7); err == nil {
		t.Fatal("commit of unprepared txn succeeded")
	}
	if err := pa.Abort(42); err != nil {
		t.Fatal("abort of unknown txn should be a no-op")
	}
}

// The classic bank-transfer invariant: concurrent transfers between
// accounts on different shards preserve the total balance.
func TestMoneyConservation(t *testing.T) {
	c, pa, pb, _, _ := setup()
	put := func(shard string, key string, amount uint64) {
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, amount)
		if _, err := c.Execute([]Request{{Shard: shard,
			Writes: []txn.Write{{Key: []byte(key), Value: buf}}}}); err != nil {
			t.Fatal(err)
		}
	}
	const accounts = 4
	for i := 0; i < accounts; i++ {
		put("a", fmt.Sprintf("acct%d", i), 1000)
		put("b", fmt.Sprintf("acct%d", i), 1000)
	}

	read := func(p *ShardParticipant, key string) (uint64, uint64) {
		v, ver, ok, _ := p.ReadLatest([]byte(key), ^uint64(0))
		if !ok {
			t.Fatalf("account %s missing", key)
		}
		return binary.BigEndian.Uint64(v), ver
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("acct%d", (g+i)%accounts)
				dst := fmt.Sprintf("acct%d", (g+i+1)%accounts)
				// Transfer 1 from shard a's src to shard b's dst.
				sv, sver := read(pa, src)
				dv, dver := read(pb, dst)
				if sv == 0 {
					continue
				}
				sbuf := make([]byte, 8)
				binary.BigEndian.PutUint64(sbuf, sv-1)
				dbuf := make([]byte, 8)
				binary.BigEndian.PutUint64(dbuf, dv+1)
				_, err := c.Execute([]Request{
					{Shard: "a", Reads: map[string]uint64{src: sver},
						Writes: []txn.Write{{Key: []byte(src), Value: sbuf}}},
					{Shard: "b", Reads: map[string]uint64{dst: dver},
						Writes: []txn.Write{{Key: []byte(dst), Value: dbuf}}},
				})
				if err != nil && !errors.Is(err, ErrAborted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		va, _ := read(pa, fmt.Sprintf("acct%d", i))
		vb, _ := read(pb, fmt.Sprintf("acct%d", i))
		total += va + vb
	}
	if total != 8000 {
		t.Fatalf("total balance = %d, want 8000 (money not conserved)", total)
	}
	commits, aborts := c.Stats()
	t.Logf("transfers: %d commits, %d aborts", commits, aborts)
	if commits == 0 {
		t.Fatal("no transfer committed")
	}
}
