package twopc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"spitz/internal/txn"
	"spitz/internal/txn/tso"
)

func setup() (*Coordinator, *ShardParticipant, *ShardParticipant, *txn.MemStore, *txn.MemStore) {
	ts := tso.New(0)
	sa, sb := txn.NewMemStore(), txn.NewMemStore()
	pa, pb := NewShardParticipant(sa), NewShardParticipant(sb)
	c := NewCoordinator(ts)
	c.Register("a", pa)
	c.Register("b", pb)
	return c, pa, pb, sa, sb
}

func TestCommitAcrossShards(t *testing.T) {
	c, _, _, sa, sb := setup()
	v, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got, ver, ok, _ := sa.ReadLatest([]byte("x"), v)
	if !ok || string(got) != "1" || ver != v {
		t.Fatal("shard a write missing")
	}
	got, ver, ok, _ = sb.ReadLatest([]byte("y"), v)
	if !ok || string(got) != "2" || ver != v {
		t.Fatal("shard b write missing")
	}
	commits, aborts := c.Stats()
	if commits != 1 || aborts != 0 {
		t.Fatalf("stats = %d/%d", commits, aborts)
	}
}

func TestUnknownShard(t *testing.T) {
	c, _, _, _, _ := setup()
	if _, err := c.Execute([]Request{{Shard: "nope"}}); err == nil {
		t.Fatal("unknown shard accepted")
	}
}

func TestAbortRollsBackAllShards(t *testing.T) {
	c, pa, _, sa, sb := setup()
	// Hold a lock on shard a's key x via a prepared-but-unfinished txn.
	if err := pa.Prepare(999, nil, []txn.Write{{Key: []byte("x"), Value: []byte("held")}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
	// Neither shard applied anything.
	if _, _, ok, _ := sa.ReadLatest([]byte("x"), ^uint64(0)); ok {
		t.Fatal("aborted write visible on shard a")
	}
	if _, _, ok, _ := sb.ReadLatest([]byte("y"), ^uint64(0)); ok {
		t.Fatal("aborted write visible on shard b")
	}
	// Shard b's lock must have been released: a retry succeeds after the
	// blocker aborts.
	pa.Abort(999)
	if _, err := c.Execute([]Request{
		{Shard: "a", Writes: []txn.Write{{Key: []byte("x"), Value: []byte("1")}}},
		{Shard: "b", Writes: []txn.Write{{Key: []byte("y"), Value: []byte("2")}}},
	}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestReadValidationAbort(t *testing.T) {
	c, pa, _, _, _ := setup()
	// Commit an initial value so lastWrite is nonzero.
	if _, err := c.Execute([]Request{{Shard: "a",
		Writes: []txn.Write{{Key: []byte("x"), Value: []byte("v1")}}}}); err != nil {
		t.Fatal(err)
	}
	// A transaction that read x at version 0 (stale) must abort.
	_, err := c.Execute([]Request{{Shard: "a",
		Reads:  map[string]uint64{"x": 0},
		Writes: []txn.Write{{Key: []byte("z"), Value: []byte("out")}}}})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("stale read committed: %v", err)
	}
	// Reading the current version succeeds.
	_, ver, _, _ := pa.ReadLatest([]byte("x"), ^uint64(0))
	if _, err := c.Execute([]Request{{Shard: "a",
		Reads:  map[string]uint64{"x": ver},
		Writes: []txn.Write{{Key: []byte("z"), Value: []byte("out")}}}}); err != nil {
		t.Fatalf("fresh read aborted: %v", err)
	}
}

func TestLocksReleasedAfterCommit(t *testing.T) {
	c, _, _, _, _ := setup()
	for i := 0; i < 5; i++ {
		if _, err := c.Execute([]Request{{Shard: "a",
			Writes: []txn.Write{{Key: []byte("same-key"), Value: []byte{byte(i)}}}}}); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestPrepareConflictOnReadLock(t *testing.T) {
	_, pa, _, _, _ := setup()
	if err := pa.Prepare(1, nil, []txn.Write{{Key: []byte("k"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	// Another txn reading the locked key must vote abort.
	err := pa.Prepare(2, map[string]uint64{"k": 0}, nil)
	if !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("read of locked key prepared: %v", err)
	}
	pa.Abort(1)
}

func TestCommitUnpreparedFails(t *testing.T) {
	_, pa, _, _, _ := setup()
	if err := pa.Commit(42, 7); err == nil {
		t.Fatal("commit of unprepared txn succeeded")
	}
	if err := pa.Abort(42); err != nil {
		t.Fatal("abort of unknown txn should be a no-op")
	}
}

// The classic bank-transfer invariant: concurrent transfers between
// accounts on different shards preserve the total balance.
func TestMoneyConservation(t *testing.T) {
	c, pa, pb, _, _ := setup()
	put := func(shard string, key string, amount uint64) {
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, amount)
		if _, err := c.Execute([]Request{{Shard: shard,
			Writes: []txn.Write{{Key: []byte(key), Value: buf}}}}); err != nil {
			t.Fatal(err)
		}
	}
	const accounts = 4
	for i := 0; i < accounts; i++ {
		put("a", fmt.Sprintf("acct%d", i), 1000)
		put("b", fmt.Sprintf("acct%d", i), 1000)
	}

	read := func(p *ShardParticipant, key string) (uint64, uint64) {
		v, ver, ok, _ := p.ReadLatest([]byte(key), ^uint64(0))
		if !ok {
			t.Fatalf("account %s missing", key)
		}
		return binary.BigEndian.Uint64(v), ver
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("acct%d", (g+i)%accounts)
				dst := fmt.Sprintf("acct%d", (g+i+1)%accounts)
				// Transfer 1 from shard a's src to shard b's dst.
				sv, sver := read(pa, src)
				dv, dver := read(pb, dst)
				if sv == 0 {
					continue
				}
				sbuf := make([]byte, 8)
				binary.BigEndian.PutUint64(sbuf, sv-1)
				dbuf := make([]byte, 8)
				binary.BigEndian.PutUint64(dbuf, dv+1)
				_, err := c.Execute([]Request{
					{Shard: "a", Reads: map[string]uint64{src: sver},
						Writes: []txn.Write{{Key: []byte(src), Value: sbuf}}},
					{Shard: "b", Reads: map[string]uint64{dst: dver},
						Writes: []txn.Write{{Key: []byte(dst), Value: dbuf}}},
				})
				if err != nil && !errors.Is(err, ErrAborted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		va, _ := read(pa, fmt.Sprintf("acct%d", i))
		vb, _ := read(pb, fmt.Sprintf("acct%d", i))
		total += va + vb
	}
	if total != 8000 {
		t.Fatalf("total balance = %d, want 8000 (money not conserved)", total)
	}
	commits, aborts := c.Stats()
	t.Logf("transfers: %d commits, %d aborts", commits, aborts)
	if commits == 0 {
		t.Fatal("no transfer committed")
	}
}
