package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spitz"
	"spitz/internal/core"
	"spitz/internal/postree"
	"spitz/internal/wire"
)

// QuerySmoke is the verified-query workload CI runs: a 4-shard
// in-memory cluster served over the wire protocol, driven entirely
// through ShardedClient.Query — INSERT/UPDATE/DELETE statements commit
// through the coordinator, then, under concurrent write churn that
// keeps the shard digests advancing, range scans with boolean
// predicates, COUNT/SUM aggregates and inverted-index lookups fan out
// and are verified shard by shard against the client's pinned digests
// (the churn forces the consistency-proof path, not just same-digest
// re-checks). Every
// result is checked against expectations the smoke computes itself
// while driving the workload. A second phase serves an engine whose
// OpQuery batch proofs are corrupted in flight; both a range query and
// a lookup query must trip ErrTampered. It returns an error on any
// deviation, in either direction: an honest run that fails, or a
// tampered run that passes.
func QuerySmoke() error {
	db, err := spitz.OpenCluster("", spitz.ClusterOptions{Shards: 4, MaintainInverted: true})
	if err != nil {
		return err
	}
	defer db.Close()
	ln, _ := wire.Listen()
	go db.Serve(ln)
	defer ln.Close()
	sc, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(ln) })
	if err != nil {
		return err
	}
	defer sc.Close()

	// Workload: 48 orders, then close every fourth and delete the last
	// two, tracking the expected live state alongside.
	const n = 48
	type order struct {
		amount int
		region string
		status string
	}
	want := make(map[int]order, n)
	for i := 0; i < n; i++ {
		region := "east"
		if i%2 == 1 {
			region = "west"
		}
		stmt := fmt.Sprintf(
			"INSERT INTO orders (pk, amount, region, status) VALUES ('ord-%03d', '%d', '%s', 'open')",
			i, i+1, region)
		res, err := sc.Query(stmt)
		if err != nil {
			return fmt.Errorf("insert %d: %w", i, err)
		}
		if res.RowsAffected != 1 {
			return fmt.Errorf("insert %d: %d rows affected", i, res.RowsAffected)
		}
		want[i] = order{amount: i + 1, region: region, status: "open"}
	}
	for i := 0; i < n; i += 4 {
		stmt := fmt.Sprintf("UPDATE orders SET status = 'closed' WHERE pk = 'ord-%03d'", i)
		res, err := sc.Query(stmt)
		if err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
		if res.RowsAffected != 1 {
			return fmt.Errorf("update %d: %d rows affected", i, res.RowsAffected)
		}
		o := want[i]
		o.status = "closed"
		want[i] = o
	}
	for _, i := range []int{n - 2, n - 1} {
		stmt := fmt.Sprintf("DELETE FROM orders WHERE pk = 'ord-%03d'", i)
		res, err := sc.Query(stmt)
		if err != nil {
			return fmt.Errorf("delete %d: %w", i, err)
		}
		if res.RowsAffected != 1 {
			return fmt.Errorf("delete %d: %d rows affected", i, res.RowsAffected)
		}
		delete(want, i)
	}

	var liveCount, liveSum, open, east int
	for _, o := range want {
		liveCount++
		liveSum += o.amount
		if o.status == "open" {
			open++
		}
		if o.region == "east" {
			east++
		}
	}

	// Write churn for the read phase: the coordinator keeps committing
	// (to a column no query below covers), so the cluster digests
	// advance between queries and verification exercises the
	// consistency-proof path, not just same-digest re-checks.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churnErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			stmt := fmt.Sprintf("UPDATE orders SET note = 'tick-%d' WHERE pk = 'ord-%03d'", i, i%(n-2))
			if _, err := db.Exec(stmt); err != nil {
				churnErr = err
				return
			}
		}
	}()
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}()

	for round := 0; round < 3; round++ {
		// Range scan with a boolean predicate: complete across shards,
		// every surfaced row proven, merged in pk order.
		res, err := sc.Query("SELECT amount FROM orders WHERE pk BETWEEN 'ord-000' AND 'ord-999' AND status = 'open'")
		if err != nil {
			return fmt.Errorf("range scan: %w", err)
		}
		if len(res.Rows) != open {
			return fmt.Errorf("range scan: %d rows, want %d", len(res.Rows), open)
		}
		for i := 1; i < len(res.Rows); i++ {
			if string(res.Rows[i-1].PK) >= string(res.Rows[i].PK) {
				return fmt.Errorf("range scan rows out of pk order at %d", i)
			}
		}

		// Verified aggregates, re-folded client-side from proven cells.
		res, err = sc.Query("SELECT COUNT(amount) FROM orders WHERE pk BETWEEN 'ord-000' AND 'ord-999'")
		if err != nil {
			return fmt.Errorf("count: %w", err)
		}
		if !res.HasAgg || res.AggValue != uint64(liveCount) {
			return fmt.Errorf("count = %d, want %d", res.AggValue, liveCount)
		}
		res, err = sc.Query("SELECT SUM(amount) FROM orders WHERE pk BETWEEN 'ord-000' AND 'ord-999'")
		if err != nil {
			return fmt.Errorf("sum: %w", err)
		}
		if !res.HasAgg || res.AggValue != uint64(liveSum) {
			return fmt.Errorf("sum = %d, want %d", res.AggValue, liveSum)
		}

		// Inverted-index lookup fanned out across every shard.
		res, err = sc.Query("SELECT amount FROM orders WHERE region = 'east'")
		if err != nil {
			return fmt.Errorf("lookup: %w", err)
		}
		if len(res.Rows) != east {
			return fmt.Errorf("lookup: %d rows, want %d", len(res.Rows), east)
		}
	}
	close(stop)
	wg.Wait()
	if churnErr != nil {
		return fmt.Errorf("write churn: %w", churnErr)
	}

	// Phase 2: tamper probe. An engine served through a handler that
	// flips one byte of every query batch proof — both the range-proof
	// and point-proof paths must reject with ErrTampered.
	eng := core.New(core.Options{MaintainInverted: true})
	for i := 0; i < 8; i++ {
		status := "live"
		if i%2 == 1 {
			status = "hold"
		}
		if _, err := eng.Apply("seed", []core.Put{
			{Table: "inv", Column: "stock", PK: []byte(fmt.Sprintf("it%02d", i)), Value: []byte(fmt.Sprintf("%d", i+1))},
			{Table: "inv", Column: "status", PK: []byte(fmt.Sprintf("it%02d", i)), Value: []byte(status)},
		}); err != nil {
			return err
		}
	}
	tamperLn, _ := wire.Listen()
	tampered := wire.NewHandlerServer(wire.MutateHandler(wire.EngineHandler(eng),
		func(req wire.Request, resp *wire.Response) {
			if req.Op != wire.OpQuery || resp.BatchProof == nil {
				return
			}
			// Copy-on-write: served node bodies alias the engine's store.
			bp := *resp.BatchProof
			switch {
			case bp.Points != nil && len(bp.Points.Nodes) > 0:
				points := *bp.Points
				points.Nodes = append([][]byte(nil), points.Nodes...)
				n := append([]byte(nil), points.Nodes[0]...)
				n[len(n)/2] ^= 0x01
				points.Nodes[0] = n
				bp.Points = &points
			case len(bp.Ranges) > 0 && len(bp.Ranges[0].Nodes) > 0:
				ranges := append([]postree.RangeProof(nil), bp.Ranges...)
				nodes := append([][]byte(nil), ranges[0].Nodes...)
				n := append([]byte(nil), nodes[0]...)
				n[len(n)/2] ^= 0x01
				nodes[0] = n
				ranges[0].Nodes = nodes
				bp.Ranges = ranges
			default:
				return
			}
			resp.BatchProof = &bp
		}))
	go tampered.Serve(tamperLn)
	defer tampered.Close()

	twc, err := wire.Connect(tamperLn)
	if err != nil {
		return err
	}
	tcl := spitz.NewClient(twc)
	defer tcl.Close()
	if _, err := tcl.Query("SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07'"); err == nil {
		return errors.New("tamper probe: corrupted range proof was accepted")
	} else if !errors.Is(err, spitz.ErrTampered) {
		return fmt.Errorf("tamper probe range misreported: %w", err)
	}
	if _, err := tcl.Query("SELECT stock FROM inv WHERE status = 'hold'"); err == nil {
		return errors.New("tamper probe: corrupted lookup proof was accepted")
	} else if !errors.Is(err, spitz.ErrTampered) {
		return fmt.Errorf("tamper probe lookup misreported: %w", err)
	}
	return nil
}
