package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"spitz/internal/cas"
	"spitz/internal/workload"
)

// Config controls an experiment sweep.
type Config struct {
	// Sizes are the database sizes to sweep (defaults to the paper's 10k
	// to 1.28M doubling series).
	Sizes []int
	// Ops is the number of measured operations per size (reads, writes, or
	// range queries depending on the experiment).
	Ops int
	// Batch is the write batch / group-commit size.
	Batch int
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = workload.PaperSizes
	}
	if c.Ops == 0 {
		c.Ops = 20_000
	}
	if c.Batch == 0 {
		c.Batch = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// measure times fn over n operations and returns operations per second.
// A short untimed warmup primes caches so small samples are stable.
func measure(n int, fn func(i int) error) (float64, error) {
	warm := n / 10
	if warm > 200 {
		warm = 200
	}
	for i := 0; i < warm; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds(), nil
}

// ---------------------------------------------------------------------------
// Figure 1: storage with and without deduplication

// Fig1 reproduces Figure 1: 10 wiki pages of 16 KB; one page is edited per
// version; the plot compares cumulative storage with ForkBase-style
// content-defined deduplication against full snapshots.
func Fig1(maxVersions int) (Result, error) {
	if maxVersions <= 0 {
		maxVersions = 60
	}
	const pages, pageSize = 10, 16 * 1024
	store := cas.NewMemory()
	blobs := cas.NewBlobStore(store)
	ps := workload.WikiPages(pages, pageSize, 1)
	rng := rand.New(rand.NewSource(2))

	bodies := make([][]byte, pages)
	var naive int64
	for i, p := range ps {
		bodies[i] = p.Body
		blobs.PutBlob(p.Body)
		naive += int64(len(p.Body))
	}

	dedup := Series{Name: "Storage-ForkBase"}
	raw := Series{Name: "Storage"}
	for v := 1; v <= maxVersions; v++ {
		i := rng.Intn(pages)
		bodies[i] = workload.EditPage(bodies[i], rng)
		blobs.PutBlob(bodies[i])
		naive += int64(pageSize)
		if v%10 == 0 {
			dedup.Points = append(dedup.Points, Point{X: v, Y: float64(store.Stats().PhysicalBytes) / 1024})
			raw.Points = append(raw.Points, Point{X: v, Y: float64(naive) / 1024})
		}
	}
	return Result{
		Title:  "Figure 1: data storage improved by deduplication",
		XLabel: "#Versions",
		YLabel: "Storage (KB)",
		Series: []Series{dedup, raw},
	}, nil
}

// ---------------------------------------------------------------------------
// Figures 6(a)/6(b): basic operations, single thread

// systemSet builds the Figure 6/7 systems (fresh per size).
func systemSet() []system {
	return []system{newKVSSystem(), newSpitzSystem(), newBaselineSystem()}
}

// Fig6Read reproduces Figure 6(a): read-only throughput across database
// sizes for Immutable KVS, Spitz, Spitz-verify, Baseline, Baseline-verify.
func Fig6Read(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		Title:  "Figure 6(a): basic operations, read",
		XLabel: "#Records",
		YLabel: "ops/s",
	}
	series := map[string]*Series{}
	order := []string{"Immutable KVS", "Spitz", "Spitz-verify", "Baseline", "Baseline-verify"}
	for _, name := range order {
		series[name] = &Series{Name: name}
	}
	for _, size := range cfg.Sizes {
		records := workload.Records(size, cfg.Seed)
		reads := workload.ReadSequence(records, cfg.Ops, cfg.Seed+1)
		for _, sys := range systemSet() {
			if err := load(sys, records, cfg.Batch); err != nil {
				return res, fmt.Errorf("load %s at %d: %w", sys.Name(), size, err)
			}
			ops, err := measure(len(reads), func(i int) error { return sys.Read(reads[i]) })
			if err != nil {
				return res, err
			}
			series[sys.Name()].Points = append(series[sys.Name()].Points, Point{X: size, Y: ops})

			vname := sys.Name() + "-verify"
			if _, want := series[vname]; want {
				vops := cfg.Ops / verifyOpsDivisor(sys.Name())
				if vops < 100 {
					vops = 100
				}
				ops, err := measure(vops, func(i int) error { return sys.ReadVerified(reads[i%len(reads)]) })
				if err != nil {
					return res, err
				}
				series[vname].Points = append(series[vname].Points, Point{X: size, Y: ops})
			}
			sys.Close()
		}
	}
	for _, name := range order {
		res.Series = append(res.Series, *series[name])
	}
	return res, nil
}

// verifyOpsDivisor shrinks the measured-op count for slow verified paths
// so sweeps complete in reasonable time without changing the metric.
func verifyOpsDivisor(name string) int {
	if name == "Baseline" {
		return 20 // block-rehash per read: ~2 orders slower
	}
	return 4
}

// Fig6Write reproduces Figure 6(b): write-only throughput. The database is
// preloaded at each size, then updates run in group-commit batches.
func Fig6Write(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		Title:  "Figure 6(b): basic operations, write",
		XLabel: "#Records",
		YLabel: "ops/s",
	}
	series := map[string]*Series{}
	order := []string{"Immutable KVS", "Spitz", "Spitz-verify", "Baseline", "Baseline-verify"}
	for _, name := range order {
		series[name] = &Series{Name: name}
	}
	for _, size := range cfg.Sizes {
		records := workload.Records(size, cfg.Seed)
		for _, sys := range systemSet() {
			if err := load(sys, records, cfg.Batch); err != nil {
				return res, err
			}
			// One untimed batch warms the write path, then the timed run.
			warm := workload.UpdateSequence(records, cfg.Batch, cfg.Seed+9)
			if err := sys.Write(warm); err != nil {
				return res, err
			}
			updates := workload.UpdateSequence(records, cfg.Ops, cfg.Seed+2)
			batches := workload.Batches(updates, cfg.Batch)
			start := time.Now()
			for _, b := range batches {
				if err := sys.Write(b); err != nil {
					return res, err
				}
			}
			ops := float64(len(updates)) / time.Since(start).Seconds()
			series[sys.Name()].Points = append(series[sys.Name()].Points, Point{X: size, Y: ops})

			vname := sys.Name() + "-verify"
			if _, want := series[vname]; want {
				vu := workload.UpdateSequence(records, cfg.Ops/verifyOpsDivisor(sys.Name())+cfg.Batch, cfg.Seed+3)
				vb := workload.Batches(vu, cfg.Batch)
				start := time.Now()
				written := 0
				for _, b := range vb {
					if err := sys.WriteVerified(b); err != nil {
						return res, err
					}
					written += len(b)
				}
				ops := float64(written) / time.Since(start).Seconds()
				series[vname].Points = append(series[vname].Points, Point{X: size, Y: ops})
			}
			sys.Close()
		}
	}
	for _, name := range order {
		res.Series = append(res.Series, *series[name])
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 7: range queries at 0.1% selectivity

// Fig7 reproduces Figure 7: range-query throughput (queries per second,
// each covering 0.1% of the primary keys) across database sizes.
func Fig7(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Ops > 2000 {
		cfg.Ops = 2000 // range queries touch many records each
	}
	res := Result{
		Title:  "Figure 7: range query performance (selectivity 0.1%)",
		XLabel: "#Records",
		YLabel: "queries/s",
	}
	series := map[string]*Series{}
	order := []string{"Immutable KVS", "Spitz", "Spitz-verify", "Baseline", "Baseline-verify"}
	for _, name := range order {
		series[name] = &Series{Name: name}
	}
	for _, size := range cfg.Sizes {
		records := workload.Records(size, cfg.Seed)
		keys := make([][]byte, len(records))
		for i, r := range records {
			keys[i] = r.Key
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		ranges := workload.Ranges(keys, 0.001, cfg.Ops, cfg.Seed+4)
		for _, sys := range systemSet() {
			if err := load(sys, records, cfg.Batch); err != nil {
				return res, err
			}
			qps, err := measure(len(ranges), func(i int) error {
				n, err := sys.Range(ranges[i].Lo, ranges[i].Hi)
				if err != nil {
					return err
				}
				if n != ranges[i].Count {
					return fmt.Errorf("%s: range returned %d, want %d", sys.Name(), n, ranges[i].Count)
				}
				return nil
			})
			if err != nil {
				return res, err
			}
			series[sys.Name()].Points = append(series[sys.Name()].Points, Point{X: size, Y: qps})

			vname := sys.Name() + "-verify"
			if _, want := series[vname]; want {
				vops := len(ranges) / verifyOpsDivisor(sys.Name())
				if vops < 10 {
					vops = 10
				}
				qps, err := measure(vops, func(i int) error {
					r := ranges[i%len(ranges)]
					n, err := sys.RangeVerified(r.Lo, r.Hi)
					if err != nil {
						return err
					}
					if n != r.Count {
						return fmt.Errorf("%s: verified range returned %d, want %d", sys.Name(), n, r.Count)
					}
					return nil
				})
				if err != nil {
					return res, err
				}
				series[vname].Points = append(series[vname].Points, Point{X: size, Y: qps})
			}
			sys.Close()
		}
	}
	for _, name := range order {
		res.Series = append(res.Series, *series[name])
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 8: non-intrusive design vs Spitz

// Fig8 reproduces Figure 8: Spitz (embedded) against the non-intrusive
// composition, read and write, with and without verification.
func Fig8(cfg Config) (Result, Result, error) {
	cfg = cfg.withDefaults()
	readRes := Result{Title: "Figure 8(a): non-intrusive vs Spitz, read",
		XLabel: "#Records", YLabel: "ops/s"}
	writeRes := Result{Title: "Figure 8(b): non-intrusive vs Spitz, write",
		XLabel: "#Records", YLabel: "ops/s"}
	order := []string{"Spitz", "Spitz-verify", "Non-intrusive", "Non-intrusive-verify"}
	readSeries := map[string]*Series{}
	writeSeries := map[string]*Series{}
	for _, name := range order {
		readSeries[name] = &Series{Name: name}
		writeSeries[name] = &Series{Name: name}
	}

	for _, size := range cfg.Sizes {
		records := workload.Records(size, cfg.Seed)
		reads := workload.ReadSequence(records, cfg.Ops, cfg.Seed+5)

		ni, err := newNonintrusiveSystem()
		if err != nil {
			return readRes, writeRes, err
		}
		systems := []system{newSpitzSystem(), ni}
		for _, sys := range systems {
			if err := load(sys, records, cfg.Batch); err != nil {
				return readRes, writeRes, err
			}
			// Reads. Network-bound systems measure fewer ops.
			rops := cfg.Ops
			if sys.Name() == "Non-intrusive" {
				rops = cfg.Ops / 4
			}
			ops, err := measure(rops, func(i int) error { return sys.Read(reads[i%len(reads)]) })
			if err != nil {
				return readRes, writeRes, err
			}
			readSeries[sys.Name()].Points = append(readSeries[sys.Name()].Points, Point{X: size, Y: ops})

			vops := rops / 4
			if vops < 100 {
				vops = 100
			}
			ops, err = measure(vops, func(i int) error { return sys.ReadVerified(reads[i%len(reads)]) })
			if err != nil {
				return readRes, writeRes, err
			}
			readSeries[sys.Name()+"-verify"].Points = append(readSeries[sys.Name()+"-verify"].Points, Point{X: size, Y: ops})

			// Writes.
			updates := workload.UpdateSequence(records, cfg.Ops/2+cfg.Batch, cfg.Seed+6)
			batches := workload.Batches(updates, cfg.Batch)
			start := time.Now()
			written := 0
			for _, b := range batches {
				if err := sys.Write(b); err != nil {
					return readRes, writeRes, err
				}
				written += len(b)
			}
			w := float64(written) / time.Since(start).Seconds()
			writeSeries[sys.Name()].Points = append(writeSeries[sys.Name()].Points, Point{X: size, Y: w})

			vu := workload.UpdateSequence(records, cfg.Ops/4+cfg.Batch, cfg.Seed+7)
			vb := workload.Batches(vu, cfg.Batch)
			start = time.Now()
			written = 0
			for _, b := range vb {
				if err := sys.WriteVerified(b); err != nil {
					return readRes, writeRes, err
				}
				written += len(b)
			}
			w = float64(written) / time.Since(start).Seconds()
			writeSeries[sys.Name()+"-verify"].Points = append(writeSeries[sys.Name()+"-verify"].Points, Point{X: size, Y: w})

			sys.Close()
		}
	}
	for _, name := range order {
		readRes.Series = append(readRes.Series, *readSeries[name])
		writeRes.Series = append(writeRes.Series, *writeSeries[name])
	}
	return readRes, writeRes, nil
}
