package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"spitz/internal/core"
	"spitz/internal/server"
	"spitz/internal/wal"
)

// Sharded measures aggregate commit throughput of the sharded cluster
// (Section 5.2) against the single-engine baseline: for each shard
// count (1 = a one-shard cluster, the closest apples-to-apples
// baseline), `workers` goroutines *per shard* (weak scaling — offered
// load grows with the cluster, keeping per-shard group commit equally
// deep) commit single-cell writes to uniformly spread keys until at
// least `ops` commits land, in memory and — when baseDir is non-empty —
// with per-shard SyncAlways durability. Each shard runs its own
// group-commit pipeline and write-ahead log, so per-shard batching
// stays deep while ledger CPU and fsyncs overlap across shards; the
// throughput curve across shard counts is the scaling claim this
// experiment documents.
func Sharded(baseDir string, shardCounts []int, workers, ops int) (Result, error) {
	res := Result{
		Title:  "Sharded cluster: aggregate commit throughput",
		XLabel: "shards",
		YLabel: fmt.Sprintf("commits/s, %d concurrent committers per shard, single-cell writes", workers),
	}
	mem := Series{Name: "memory"}
	dur := Series{Name: "durable SyncAlways"}
	for _, n := range shardCounts {
		tput, err := shardedRun(server.Options{Shards: n}, workers*n, ops*n)
		if err != nil {
			return Result{}, err
		}
		mem.Points = append(mem.Points, Point{X: n, Y: tput})
		if baseDir == "" {
			continue
		}
		tput, err = shardedRun(server.Options{
			Shards:             n,
			Dir:                filepath.Join(baseDir, fmt.Sprintf("cluster-%d", n)),
			Sync:               wal.SyncAlways,
			CheckpointInterval: -1,
		}, workers*n, ops*n)
		if err != nil {
			return Result{}, err
		}
		dur.Points = append(dur.Points, Point{X: n, Y: tput})
	}
	res.Series = append(res.Series, mem)
	if baseDir != "" {
		res.Series = append(res.Series, dur)
	}
	return res, nil
}

func shardedRun(opts server.Options, workers, ops int) (float64, error) {
	c, err := server.Open(opts)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if workers < 1 {
		workers = 1
	}
	per := ops / workers
	if per < 1 {
		per = 1
	}
	commit := func(worker, i int) error {
		pk := []byte(fmt.Sprintf("pk%03d-%06d", worker, i))
		_, err := c.Apply("bench", []core.Put{{Table: "t", Column: "c", PK: pk,
			Value: []byte("value-00000000")}})
		return err
	}
	// Short warmup primes each shard's pipeline and WAL.
	for i := 0; i < workers; i++ {
		if err := commit(i, -1); err != nil {
			return 0, err
		}
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := commit(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(workers*per) / elapsed.Seconds(), nil
}
