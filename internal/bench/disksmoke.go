package bench

import (
	"bytes"
	"fmt"
	"time"

	"spitz"
	"spitz/internal/wire"
)

// DiskSmoke is the disk-native node store workload CI runs: a sharded
// cluster and a replicated primary, both on `-store disk` with the
// minimum 1 MiB node-cache budget so nearly every proof path faults in
// from segment files. It exercises write churn with demotions, verified
// reads, an incremental checkpoint, a clean close, a kill without close,
// and requires digest continuity — the exact pre-shutdown cluster root —
// across both reopen paths, with every read proof-verified throughout.
func DiskSmoke(dir string) error {
	if err := diskSmokeCluster(dir + "/cluster"); err != nil {
		return fmt.Errorf("sharded: %w", err)
	}
	if err := diskSmokeReplica(dir + "/replicated"); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	return nil
}

func diskSmokeCluster(dir string) error {
	const keys = 300
	copts := spitz.ClusterOptions{
		Shards:             2,
		Sync:               spitz.SyncAlways,
		CheckpointInterval: -1,
		Store:              spitz.StoreDisk,
		NodeCacheMB:        1,
	}
	db, err := spitz.OpenCluster(dir, copts)
	if err != nil {
		return err
	}
	if err := diskSmokeLoad(db, "gen0", 0, keys); err != nil {
		db.Close()
		return err
	}
	// Overwrites demote versions — the state the VLOG must carry across
	// a root-addressed reopen.
	if err := diskSmokeLoad(db, "gen1", 0, keys/3); err != nil {
		db.Close()
		return err
	}
	want := db.ClusterDigest()
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}

	// Clean reopen: root-addressed, no WAL tail.
	db2, err := spitz.OpenCluster(dir, copts)
	if err != nil {
		return fmt.Errorf("reopen after close: %w", err)
	}
	if got := db2.ClusterDigest(); got.Root != want.Root {
		db2.Close()
		return fmt.Errorf("cluster root after clean reopen %s, want %s", got.Root, want.Root)
	}
	if err := diskSmokeVerify(db2, keys); err != nil {
		db2.Close()
		return err
	}
	// More churn, then a kill: no checkpoint, no close. The WAL tail is
	// the only record of gen2.
	if err := diskSmokeLoad(db2, "gen2", keys/3, 2*keys/3); err != nil {
		db2.Close()
		return err
	}
	want2 := db2.ClusterDigest()
	// Kill: abandon the handle.

	db3, err := spitz.OpenCluster(dir, copts)
	if err != nil {
		return fmt.Errorf("reopen after kill: %w", err)
	}
	defer db3.Close()
	if got := db3.ClusterDigest(); got.Root != want2.Root {
		return fmt.Errorf("cluster root after kill %s, want %s", got.Root, want2.Root)
	}
	if err := diskSmokeVerify(db3, keys); err != nil {
		return err
	}
	if hist, err := db3.History("t", "c", benchKey(0)); err != nil || len(hist) != 2 {
		return fmt.Errorf("history after two reopens: %d versions, err %v (want 2)", len(hist), err)
	}
	return nil
}

func diskSmokeLoad(db *spitz.ClusterDB, tag string, lo, hi int) error {
	const batch = 100
	for ; lo < hi; lo += batch {
		end := lo + batch
		if end > hi {
			end = hi
		}
		puts := make([]spitz.Put, 0, end-lo)
		for i := lo; i < end; i++ {
			puts = append(puts, spitz.Put{Table: "t", Column: "c",
				PK: benchKey(i), Value: []byte(tag)})
		}
		if _, err := db.Apply("smoke "+tag, puts); err != nil {
			return err
		}
	}
	return nil
}

// diskSmokeVerify reads every key with a proof, checking each against
// its shard's entry in the cluster digest — a node store serving a
// wrong or stale byte fails here, not silently.
func diskSmokeVerify(db *spitz.ClusterDB, keys int) error {
	d := db.ClusterDigest()
	for i := 0; i < keys; i++ {
		res, shard, err := db.GetVerified("t", "c", benchKey(i))
		if err != nil || !res.Found {
			return fmt.Errorf("verified read %d: found=%v err=%v", i, res.Found, err)
		}
		if res.Digest != d.Shards[shard] {
			return fmt.Errorf("key %d proved against stale shard digest", i)
		}
	}
	return nil
}

func diskSmokeReplica(dir string) error {
	const keys = 100
	db, err := spitz.OpenDir(dir, spitz.Options{
		Sync:               spitz.SyncAlways,
		CheckpointInterval: -1, // keep the whole log so the replica bootstraps from it
		Store:              spitz.StoreDisk,
		NodeCacheMB:        1,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	for i := 0; i < keys; i++ {
		if _, err := db.Apply("smoke", []spitz.Put{{Table: "t", Column: "c",
			PK: benchKey(i), Value: []byte(fmt.Sprintf("value-%08d", i))}}); err != nil {
			return err
		}
	}
	ln, _ := wire.Listen()
	defer ln.Close()
	go db.Serve(ln)

	rep, err := spitz.NewReplica(func() (*wire.Client, error) { return wire.Connect(ln) },
		spitz.ReplicaOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	defer rep.Close()
	if err := rep.WaitForHeight(0, db.Height(), 30*time.Second); err != nil {
		return err
	}
	rln, _ := wire.Listen()
	defer rln.Close()
	go rep.Serve(rln)

	rc, err := spitz.NewReplicatedClient(
		func() (*wire.Client, error) { return wire.Connect(ln) },
		[]func() (*wire.Client, error){func() (*wire.Client, error) { return wire.Connect(rln) }},
		spitz.ReplicatedOptions{})
	if err != nil {
		return err
	}
	defer rc.Close()
	for i := 0; i < keys; i++ {
		v, found, err := rc.GetVerified("t", "c", benchKey(i))
		if err != nil || !found {
			return fmt.Errorf("replicated verified read %d: found=%v err=%v", i, found, err)
		}
		if !bytes.Equal(v, []byte(fmt.Sprintf("value-%08d", i))) {
			return fmt.Errorf("replicated read %d returned %q", i, v)
		}
	}
	return nil
}
