package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spitz/internal/cas"
	"spitz/internal/core"
	"spitz/internal/mbt"
	"spitz/internal/mpt"
	"spitz/internal/postree"
	"spitz/internal/proof"
	"spitz/internal/txn"
	"spitz/internal/txn/hlc"
	"spitz/internal/txn/tso"
	"spitz/internal/workload"
)

// ---------------------------------------------------------------------------
// Ablation: SIRI family (MPT vs MBT vs POS-tree) as the ledger index

// siriIndex is the common surface of the three SIRI instances.
type siriIndex interface {
	put(k, v []byte) error
	get(k []byte) error
	prove(k []byte) error
	root() [32]byte
}

type posAdapter struct{ t *postree.Tree }

func (a *posAdapter) put(k, v []byte) error {
	nt, err := a.t.Put(k, v)
	a.t = nt
	return err
}
func (a *posAdapter) get(k []byte) error { _, _, err := a.t.Get(k); return err }
func (a *posAdapter) prove(k []byte) error {
	p, err := a.t.ProveGet(k)
	if err != nil {
		return err
	}
	return p.Verify(a.t.Root())
}
func (a *posAdapter) root() [32]byte { return a.t.Root() }

type mptAdapter struct{ t *mpt.Trie }

func (a *mptAdapter) put(k, v []byte) error {
	nt, err := a.t.Put(k, v)
	a.t = nt
	return err
}
func (a *mptAdapter) get(k []byte) error { _, _, err := a.t.Get(k); return err }
func (a *mptAdapter) prove(k []byte) error {
	p, err := a.t.ProveGet(k)
	if err != nil {
		return err
	}
	return p.Verify(a.t.Root())
}
func (a *mptAdapter) root() [32]byte { return a.t.Root() }

type mbtAdapter struct{ t *mbt.Tree }

func (a *mbtAdapter) put(k, v []byte) error {
	nt, err := a.t.Put(k, v)
	a.t = nt
	return err
}
func (a *mbtAdapter) get(k []byte) error { _, _, err := a.t.Get(k); return err }
func (a *mbtAdapter) prove(k []byte) error {
	p, err := a.t.ProveGet(k)
	if err != nil {
		return err
	}
	return p.Verify(a.t.Root())
}
func (a *mbtAdapter) root() [32]byte { return a.t.Root() }

// AblationSIRI compares the three SIRI instances as candidate ledger
// indexes (Section 3.1 cites [59]'s finding that "POS-tree has better
// overall performance"). Each structure loads through its natural write
// interface — the POS-tree in 1000-entry batches, as Spitz's group commit
// drives it; MPT and MBT per key. Storage is the live (reachable) size of
// the final instance, measured by rebuilding it canonically into a fresh
// store; superseded copy-on-write nodes are garbage-collectable and not
// charged.
func AblationSIRI(n int) (Result, error) {
	if n <= 0 {
		n = 100_000
	}
	records := workload.Records(n, 11)
	reads := workload.ReadSequence(records, 20_000, 12)

	res := Result{
		Title:  fmt.Sprintf("Ablation: SIRI family as ledger index (%d records)", n),
		XLabel: "metric (1=load ops/s, 2=get ops/s, 3=prove+verify ops/s, 4=live storage MB)",
		YLabel: "per metric",
	}

	// POS-tree: batched loads, canonical rebuild for live size.
	posSeries, err := siriMetrics("POS-tree", records, reads,
		func() (siriIndex, func() float64) {
			s := cas.NewMemory()
			a := &posAdapter{t: postree.Empty(s)}
			live := func() float64 {
				n, err := a.t.LiveBytes()
				if err != nil {
					return 0
				}
				return float64(n) / (1 << 20)
			}
			return a, live
		},
		func(idx siriIndex) error { // batched load
			a := idx.(*posAdapter)
			for _, batch := range workload.Batches(records, 1000) {
				edits := make([]postree.Edit, len(batch))
				for i, kv := range batch {
					edits[i] = postree.Edit{Key: kv.Key, Value: kv.Value}
				}
				nt, err := a.t.Apply(edits)
				if err != nil {
					return err
				}
				a.t = nt
			}
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, posSeries)

	// MPT and MBT: per-key loads, canonical rebuild for live size.
	mptSeries, err := siriMetrics("MPT", records, reads,
		func() (siriIndex, func() float64) {
			s := cas.NewMemory()
			a := &mptAdapter{t: mpt.Empty(s)}
			live := func() float64 {
				n, err := a.t.LiveBytes()
				if err != nil {
					return 0
				}
				return float64(n) / (1 << 20)
			}
			return a, live
		}, nil)
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, mptSeries)

	mbtSeries, err := siriMetrics("MBT", records, reads,
		func() (siriIndex, func() float64) {
			s := cas.NewMemory()
			a := &mbtAdapter{t: mbt.New(s, 4096)}
			live := func() float64 {
				n, err := a.t.LiveBytes()
				if err != nil {
					return 0
				}
				return float64(n) / (1 << 20)
			}
			return a, live
		}, nil)
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, mbtSeries)
	return res, nil
}

// siriMetrics runs the four SIRI metrics for one candidate. loadFn, when
// non-nil, replaces the default per-key load.
func siriMetrics(name string, records []workload.KeyValue, reads [][]byte,
	mk func() (siriIndex, func() float64), loadFn func(siriIndex) error) (Series, error) {
	idx, live := mk()
	series := Series{Name: name}

	start := time.Now()
	if loadFn != nil {
		if err := loadFn(idx); err != nil {
			return series, err
		}
	} else {
		for _, r := range records {
			if err := idx.put(r.Key, r.Value); err != nil {
				return series, err
			}
		}
	}
	series.Points = append(series.Points,
		Point{X: 1, Y: float64(len(records)) / time.Since(start).Seconds()})

	getOps, err := measure(len(reads), func(i int) error { return idx.get(reads[i]) })
	if err != nil {
		return series, err
	}
	series.Points = append(series.Points, Point{X: 2, Y: getOps})

	proveOps, err := measure(len(reads)/4, func(i int) error { return idx.prove(reads[i]) })
	if err != nil {
		return series, err
	}
	series.Points = append(series.Points, Point{X: 3, Y: proveOps})
	series.Points = append(series.Points, Point{X: 4, Y: live()})
	return series, nil
}

// ---------------------------------------------------------------------------
// Ablation: online vs deferred verification

// AblationDeferred compares online verification (every proof checked as it
// arrives) against deferred batches (Section 3.2 / 5.3), sweeping the
// batch size.
func AblationDeferred(n int, batchSizes []int) (Result, error) {
	if n <= 0 {
		n = 100_000
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{1, 10, 100, 1000}
	}
	records := workload.Records(n, 13)
	eng := core.New(core.Options{})
	for _, b := range workload.Batches(records, 1000) {
		puts := make([]core.Put, len(b))
		for i, kv := range b {
			puts[i] = core.Put{Table: benchTable, Column: benchColumn, PK: kv.Key, Value: kv.Value}
		}
		if _, err := eng.Apply("load", puts); err != nil {
			return Result{}, err
		}
	}
	reads := workload.ReadSequence(records, 4000, 14)

	res := Result{
		Title:  fmt.Sprintf("Ablation: online vs deferred verification (%d records)", n),
		XLabel: "verification batch size (1 = online)",
		YLabel: "verified reads/s",
	}
	series := Series{Name: "Spitz-verify"}
	for _, bs := range batchSizes {
		v := proof.NewVerifier()
		cons, err := eng.ConsistencyProof(v.Digest())
		if err != nil {
			return res, err
		}
		if err := v.Advance(eng.Digest(), cons); err != nil {
			return res, err
		}
		start := time.Now()
		pending := 0
		for i, key := range reads {
			r, err := eng.GetVerified(benchTable, benchColumn, key)
			if err != nil {
				return res, err
			}
			if bs <= 1 {
				if err := v.VerifyNow(r.Proof); err != nil {
					return res, err
				}
				continue
			}
			v.Defer(r.Proof)
			pending++
			if pending == bs || i == len(reads)-1 {
				if _, err := v.Flush(); err != nil {
					return res, err
				}
				pending = 0
			}
		}
		ops := float64(len(reads)) / time.Since(start).Seconds()
		series.Points = append(series.Points, Point{X: bs, Y: ops})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

// ---------------------------------------------------------------------------
// Ablation: timestamp oracle vs hybrid logical clocks

// AblationTimestamps measures allocation throughput of the centralized
// oracle against per-node HLCs as contention grows (Section 5.2: "the
// timestamp allocation service can become the bottleneck").
func AblationTimestamps(goroutines []int, allocs int) (Result, error) {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if allocs <= 0 {
		allocs = 200_000
	}
	res := Result{
		Title:  "Ablation: timestamp allocation (oracle vs HLC)",
		XLabel: "goroutines",
		YLabel: "timestamps/s",
	}
	oracleSeries := Series{Name: "Timestamp oracle (shared)"}
	hlcSeries := Series{Name: "HLC (per node)"}
	for _, g := range goroutines {
		// Shared oracle: all goroutines contend on one counter.
		oracle := tso.New(0)
		per := allocs / g
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < per; j++ {
					oracle.Next()
				}
			}()
		}
		wg.Wait()
		oracleSeries.Points = append(oracleSeries.Points,
			Point{X: g, Y: float64(per*g) / time.Since(start).Seconds()})

		// HLC: one clock per node (goroutine) — no shared state.
		start = time.Now()
		var wg2 sync.WaitGroup
		for i := 0; i < g; i++ {
			wg2.Add(1)
			go func() {
				defer wg2.Done()
				clock := hlc.New()
				for j := 0; j < per; j++ {
					clock.Now()
				}
			}()
		}
		wg2.Wait()
		hlcSeries.Points = append(hlcSeries.Points,
			Point{X: g, Y: float64(per*g) / time.Since(start).Seconds()})
	}
	res.Series = []Series{oracleSeries, hlcSeries}
	return res, nil
}

// ---------------------------------------------------------------------------
// Ablation: concurrency control modes and batched validation

// AblationCC compares OCC, T/O, and batched-OCC (with reordering) abort
// rates under increasing contention (Section 5.2: "dynamically adjusting
// the transaction order to reduce abort rates ... verifying the
// transactions in batch").
func AblationCC(txnsPerLevel int, skews []float64) (Result, error) {
	if txnsPerLevel <= 0 {
		txnsPerLevel = 4000
	}
	if len(skews) == 0 {
		skews = []float64{1.01, 1.2, 1.5, 2.0}
	}
	const keys = 1000
	res := Result{
		Title:  "Ablation: concurrency control abort rate under contention",
		XLabel: "zipf skew x100",
		YLabel: "aborts per 1000 txns",
	}
	occ := Series{Name: "MVCC-OCC"}
	to := Series{Name: "MVCC-TO"}
	batched := Series{Name: "Batched OCC (reordering)"}

	// Transactions execute in overlapping groups of 64 (as concurrent
	// clients would): every member reads and stages writes before any
	// member commits. Plain modes then commit one by one; the batched mode
	// validates the whole group with reordering.
	const group = 64
	run := func(mode txn.Mode, batched bool, skew float64) (float64, error) {
		store := txn.NewMemStore()
		mgr := txn.NewManager(store, tso.New(0), mode)
		seedTx := mgr.Begin()
		for i := 0; i < keys; i++ {
			seedTx.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("0"))
		}
		if _, err := seedTx.Commit(); err != nil {
			return 0, err
		}
		hot := workload.Zipf(keys, txnsPerLevel*2, skew, int64(skew*1000))
		aborted := 0
		for base := 0; base < txnsPerLevel; base += group {
			var g []*txn.Txn
			for i := base; i < base+group && i < txnsPerLevel; i++ {
				t := mgr.Begin()
				r := []byte(fmt.Sprintf("k%04d", hot[2*i]))
				w := []byte(fmt.Sprintf("k%04d", hot[2*i+1]))
				if _, _, err := t.Get(r); err != nil {
					return 0, err
				}
				t.Put(w, []byte("x"))
				g = append(g, t)
			}
			if batched {
				for _, r := range mgr.CommitBatch(g) {
					if r.Err != nil {
						if !errors.Is(r.Err, txn.ErrConflict) {
							return 0, r.Err
						}
						aborted++
					}
				}
				continue
			}
			for _, t := range g {
				if _, err := t.Commit(); err != nil {
					if !errors.Is(err, txn.ErrConflict) {
						return 0, err
					}
					aborted++
				}
			}
		}
		return 1000 * float64(aborted) / float64(txnsPerLevel), nil
	}

	for _, skew := range skews {
		x := int(skew * 100)
		y, err := run(txn.ModeOCC, false, skew)
		if err != nil {
			return res, err
		}
		occ.Points = append(occ.Points, Point{X: x, Y: y})
		y, err = run(txn.ModeTO, false, skew)
		if err != nil {
			return res, err
		}
		to.Points = append(to.Points, Point{X: x, Y: y})
		y, err = run(txn.ModeOCC, true, skew)
		if err != nil {
			return res, err
		}
		batched.Points = append(batched.Points, Point{X: x, Y: y})
	}
	res.Series = []Series{occ, to, batched}
	return res, nil
}
