package bench

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"spitz"
	"spitz/internal/wire"
)

// replicaFarm is a primary plus n serving replicas, all in-process.
type replicaFarm struct {
	db       *spitz.DB
	pln      net.Listener
	replicas []*spitz.Replica
	rlns     []net.Listener
}

func startReplicaFarm(dir string, n, keys int) (*replicaFarm, error) {
	db, err := spitz.OpenDir(filepath.Join(dir, "primary"), spitz.Options{
		Sync:               spitz.SyncNever, // load fast; replication ships appended frames
		CheckpointInterval: -1,              // keep the whole log so replicas bootstrap from it
	})
	if err != nil {
		return nil, err
	}
	f := &replicaFarm{db: db}
	const batch = 200
	for lo := 0; lo < keys; lo += batch {
		hi := lo + batch
		if hi > keys {
			hi = keys
		}
		puts := make([]spitz.Put, 0, hi-lo)
		for i := lo; i < hi; i++ {
			puts = append(puts, spitz.Put{Table: "t", Column: "c",
				PK: benchKey(i), Value: []byte("value-00000000")})
		}
		if _, err := db.Apply("load", puts); err != nil {
			f.stop()
			return nil, err
		}
	}
	f.pln, _ = wire.Listen()
	go db.Serve(f.pln)
	for i := 0; i < n; i++ {
		rep, err := spitz.NewReplica(f.dialPrimary(), spitz.ReplicaOptions{ReconnectDelay: 10 * time.Millisecond})
		if err != nil {
			f.stop()
			return nil, err
		}
		if err := rep.WaitForHeight(0, db.Height(), 30*time.Second); err != nil {
			rep.Close()
			f.stop()
			return nil, err
		}
		rln, _ := wire.Listen()
		go rep.Serve(rln)
		f.replicas = append(f.replicas, rep)
		f.rlns = append(f.rlns, rln)
	}
	return f, nil
}

func (f *replicaFarm) dialPrimary() func() (*wire.Client, error) {
	ln := f.pln
	return func() (*wire.Client, error) { return wire.Connect(ln) }
}

// dialReplicas returns dial functions for the first n serving replicas
// (all of them when n < 0), so one farm serves every configuration of a
// sweep instead of being rebuilt — and reloaded — per replica count.
func (f *replicaFarm) dialReplicas(n int) []func() (*wire.Client, error) {
	if n < 0 || n > len(f.rlns) {
		n = len(f.rlns)
	}
	out := make([]func() (*wire.Client, error), n)
	for i, ln := range f.rlns[:n] {
		ln := ln
		out[i] = func() (*wire.Client, error) { return wire.Connect(ln) }
	}
	return out
}

func (f *replicaFarm) stop() {
	for _, rep := range f.replicas {
		rep.Close()
	}
	for _, ln := range f.rlns {
		ln.Close()
	}
	if f.pln != nil {
		f.pln.Close()
	}
	f.db.Close()
}

func benchKey(i int) []byte { return []byte(fmt.Sprintf("pk%06d", i)) }

// Replica measures verified-read throughput against a primary with a
// growing set of read replicas: `readers` concurrent clients issue
// verified point reads over uniformly random keys through
// spitz.NewReplicatedClient — so every read runs the full trust pipeline
// (replica proof + primary prefix proof when the digests diverge) — for
// 0 (primary-only baseline), 1 and 2 replicas. The scaling claim is that
// follower read throughput grows beyond the single-node baseline because
// proof generation fans out across replicas; on a single machine the
// curve flattens once all cores are busy, so treat same-host numbers as
// a lower bound (EXPERIMENTS.md records the caveats).
func Replica(baseDir string, replicaCounts []int, readers, ops, keys int) (Result, error) {
	res := Result{
		Title:  "Replication: verified read throughput vs replica count",
		XLabel: "replicas (0 = primary only)",
		YLabel: fmt.Sprintf("verified reads/s, %d concurrent readers, %d keys", readers, keys),
	}
	series := Series{Name: "verified point reads"}
	// One farm — loaded once — serves every configuration: setup
	// (dialing, loading, replica catch-up) stays out of the measured
	// runs, and smaller configurations simply use a prefix of the
	// replica fleet (the extras idle; no writes flow while measuring).
	maxN := 0
	for _, n := range replicaCounts {
		if n > maxN {
			maxN = n
		}
	}
	farm, err := startReplicaFarm(filepath.Join(baseDir, "farm"), maxN, keys)
	if err != nil {
		return Result{}, err
	}
	defer farm.stop()
	for _, n := range replicaCounts {
		tput, err := replicaRun(farm, n, readers, ops, keys)
		if err != nil {
			return Result{}, err
		}
		series.Points = append(series.Points, Point{X: n, Y: tput})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

func replicaRun(farm *replicaFarm, replicas, readers, ops, keys int) (float64, error) {
	if readers < 1 {
		readers = 1
	}
	per := ops / readers
	if per < 1 {
		per = 1
	}
	clients := make([]*spitz.ReplicatedClient, readers)
	for i := range clients {
		// One client (and therefore one connection set) per reader keeps
		// the measurement about server capacity, not client-side
		// connection serialization; every connection is dialled here,
		// before the timed loop below.
		rc, err := spitz.NewReplicatedClient(farm.dialPrimary(), farm.dialReplicas(replicas), spitz.ReplicatedOptions{})
		if err != nil {
			return 0, err
		}
		defer rc.Close()
		clients[i] = rc
	}
	errs := make([]error, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			for i := 0; i < per; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := benchKey(int(rng % uint64(keys)))
				if _, found, err := clients[w].GetVerified("t", "c", key); err != nil {
					errs[w] = err
					return
				} else if !found {
					errs[w] = fmt.Errorf("key %s missing", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(readers*per) / elapsed.Seconds(), nil
}

// ReplicaSmoke is the replication availability workload CI runs: a
// durable primary with two followers under continuous write load and
// verified reads distributed across the followers; one follower is
// killed mid-run and a replacement attached, and every verified read
// must keep passing throughout — each one proving, against the primary,
// that the serving follower's digest is a prefix of the primary's
// history.
func ReplicaSmoke(baseDir string) error {
	farm, err := startReplicaFarm(baseDir, 2, 100)
	if err != nil {
		return err
	}
	defer farm.stop()

	stop := make(chan struct{})
	var writeErr error
	var wrote int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Throttled: the point is concurrent write churn, not saturating
		// the box — an unthrottled writer starves the followers (and the
		// reads being smoked) on small CI machines.
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if _, err := farm.db.Apply("smoke", []spitz.Put{{
				Table: "t", Column: "c", PK: benchKey(i % 100),
				Value: []byte(fmt.Sprintf("value-%08d", i))}}); err != nil {
				writeErr = err
				return
			}
			wrote++
		}
	}()

	readPhase := func(rc *spitz.ReplicatedClient, phase string, n int) error {
		for i := 0; i < n; i++ {
			key := benchKey(i % 100)
			if _, found, err := rc.GetVerified("t", "c", key); err != nil {
				return fmt.Errorf("%s: verified read %d: %w", phase, i, err)
			} else if !found {
				return fmt.Errorf("%s: key %s missing", phase, key)
			}
		}
		return nil
	}

	rc, err := spitz.NewReplicatedClient(farm.dialPrimary(), farm.dialReplicas(-1), spitz.ReplicatedOptions{})
	if err != nil {
		return err
	}
	defer rc.Close()
	if err := readPhase(rc, "both followers up", 200); err != nil {
		return err
	}

	// Kill follower 0 (listener and stream) mid-load: reads must keep
	// passing by failing over to the surviving follower.
	farm.replicas[0].Close()
	farm.rlns[0].Close()
	if err := readPhase(rc, "one follower down", 200); err != nil {
		return err
	}
	if rc.Replicas() == 0 {
		return fmt.Errorf("client marked every replica down with one follower alive")
	}

	// Attach a replacement follower; a fresh client spreads reads across
	// the survivor and the replacement.
	rep, err := spitz.NewReplica(farm.dialPrimary(), spitz.ReplicaOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	if err := rep.WaitForHeight(0, farm.db.Height(), 30*time.Second); err != nil {
		rep.Close()
		return err
	}
	rln, _ := wire.Listen()
	go rep.Serve(rln)
	farm.replicas[0] = rep
	farm.rlns[0] = rln
	rc2, err := spitz.NewReplicatedClient(farm.dialPrimary(), farm.dialReplicas(-1), spitz.ReplicatedOptions{})
	if err != nil {
		return err
	}
	defer rc2.Close()
	if err := readPhase(rc2, "replacement follower attached", 200); err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	if writeErr != nil {
		return fmt.Errorf("write load: %w", writeErr)
	}
	if wrote == 0 {
		return fmt.Errorf("write load never committed")
	}
	return nil
}
