package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable output of one spitz-bench run
// (-json FILE): the host and run configuration plus every result's
// series, so plotting scripts and regression dashboards consume the
// same numbers the terminal tables print.
type Report struct {
	Experiment string    `json:"experiment"`
	Timestamp  time.Time `json:"timestamp"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	CPUs       int       `json:"cpus"`
	Config     Config    `json:"config"`
	Results    []Result  `json:"results"`
}

// WriteJSON writes results and the run configuration to path as
// indented JSON. Smoke experiments produce no Result rows; the report
// then records only that the run happened and under what config.
func WriteJSON(path, experiment string, cfg Config, results []Result) error {
	rep := Report{
		Experiment: experiment,
		Timestamp:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Config:     cfg,
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
