package bench

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"

	"spitz/internal/baseline"
	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/kvs"
	"spitz/internal/ledger"
	"spitz/internal/nonintrusive"
	"spitz/internal/proof"
	"spitz/internal/workload"
)

// system is one database under test. All five Figure 6 systems implement
// it; systems without verification return errNoVerify from the *Verified
// methods and are skipped for those series.
type system interface {
	Name() string
	Write(batch []workload.KeyValue) error
	WriteVerified(batch []workload.KeyValue) error
	Read(key []byte) error
	ReadVerified(key []byte) error
	Range(lo, hi []byte) (int, error)
	RangeVerified(lo, hi []byte) (int, error)
	// Seal makes all committed data provable and refreshes client digests;
	// called between the load and measurement phases.
	Seal() error
	Close()
}

var errNoVerify = errors.New("bench: system does not support verification")

// benchTable and benchColumn address all benchmark cells.
const (
	benchTable  = "bench"
	benchColumn = "v"
)

// ---------------------------------------------------------------------------
// Immutable KVS (the ceiling)

type kvsSystem struct {
	store *kvs.Store
}

func newKVSSystem() *kvsSystem { return &kvsSystem{store: kvs.New(nil)} }

func (s *kvsSystem) Name() string { return "Immutable KVS" }

func (s *kvsSystem) Write(batch []workload.KeyValue) error {
	kvb := make([]kvs.KV, len(batch))
	for i, kv := range batch {
		kvb[i] = kvs.KV{Key: kv.Key, Value: kv.Value}
	}
	return s.store.Apply(kvb)
}

func (s *kvsSystem) WriteVerified([]workload.KeyValue) error { return errNoVerify }

func (s *kvsSystem) Read(key []byte) error {
	_, found, err := s.store.Get(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("bench: kvs missing key %q", key)
	}
	return nil
}

func (s *kvsSystem) ReadVerified([]byte) error { return errNoVerify }

func (s *kvsSystem) Range(lo, hi []byte) (int, error) {
	n := 0
	err := s.store.Scan(lo, hi, func(_, _ []byte) bool { n++; return true })
	return n, err
}

func (s *kvsSystem) RangeVerified(lo, hi []byte) (int, error) { return 0, errNoVerify }

func (s *kvsSystem) Seal() error { return nil }
func (s *kvsSystem) Close()      {}

// ---------------------------------------------------------------------------
// Spitz (embedded engine; client-side verifier)

type spitzSystem struct {
	eng      *core.Engine
	verifier *proof.Verifier
}

func newSpitzSystem() *spitzSystem {
	return &spitzSystem{eng: core.New(core.Options{}), verifier: proof.NewVerifier()}
}

func (s *spitzSystem) Name() string { return "Spitz" }

func (s *spitzSystem) puts(batch []workload.KeyValue) []core.Put {
	puts := make([]core.Put, len(batch))
	for i, kv := range batch {
		puts[i] = core.Put{Table: benchTable, Column: benchColumn, PK: kv.Key, Value: kv.Value}
	}
	return puts
}

func (s *spitzSystem) Write(batch []workload.KeyValue) error {
	_, err := s.eng.Apply("bench write", s.puts(batch))
	return err
}

// WriteVerified commits the batch and then verifies it the way a Spitz
// client does (Section 5.3, deferred/batched): advance the digest with a
// consistency proof, check the new block's inclusion, and compare the
// block's recorded write-set hash against the locally computed one.
func (s *spitzSystem) WriteVerified(batch []workload.KeyValue) error {
	h, err := s.eng.Apply("bench write", s.puts(batch))
	if err != nil {
		return err
	}
	if err := s.syncDigest(); err != nil {
		return err
	}
	header, inc, err := s.eng.Ledger().ProveBlock(h.Height)
	if err != nil {
		return err
	}
	if err := s.verifier.VerifyBlock(header, inc); err != nil {
		return err
	}
	// Recompute the write-set hash from the submitted cells and compare
	// with the block body.
	cells := make([]cellstore.Cell, len(batch))
	for i, kv := range batch {
		cells[i] = cellstore.Cell{Table: benchTable, Column: benchColumn, PK: kv.Key,
			Version: header.Version, Value: kv.Value}
	}
	want := ledger.WriteSetHash(cells)
	body, err := s.eng.Ledger().Body(h.Height)
	if err != nil {
		return err
	}
	if len(body) != 1 || body[0].WriteHash != want {
		return errors.New("bench: spitz write-set hash mismatch")
	}
	return nil
}

func (s *spitzSystem) Read(key []byte) error {
	_, err := s.eng.Get(benchTable, benchColumn, key)
	return err
}

func (s *spitzSystem) ReadVerified(key []byte) error {
	res, err := s.eng.GetVerified(benchTable, benchColumn, key)
	if err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("bench: spitz missing key %q", key)
	}
	if err := s.verifier.VerifyNow(res.Proof); err != nil {
		return err
	}
	cells, err := res.Proof.Cells()
	if err != nil {
		return err
	}
	if len(cells) != 1 {
		return errors.New("bench: unexpected verified result")
	}
	return nil
}

func (s *spitzSystem) Range(lo, hi []byte) (int, error) {
	cells, err := s.eng.RangePK(benchTable, benchColumn, lo, hi)
	return len(cells), err
}

func (s *spitzSystem) RangeVerified(lo, hi []byte) (int, error) {
	res, err := s.eng.RangePKVerified(benchTable, benchColumn, lo, hi)
	if err != nil {
		return 0, err
	}
	if err := s.verifier.VerifyNow(res.Proof); err != nil {
		return 0, err
	}
	cells, err := res.Proof.Cells()
	if err != nil {
		return 0, err
	}
	return len(cells), nil
}

func (s *spitzSystem) Seal() error { return s.syncDigest() }
func (s *spitzSystem) Close()      {}

func (s *spitzSystem) syncDigest() error {
	cur := s.verifier.Digest()
	next := s.eng.Digest()
	if cur == next {
		return nil
	}
	cons, err := s.eng.ConsistencyProof(cur)
	if err != nil {
		return err
	}
	return s.verifier.Advance(next, cons)
}

// ---------------------------------------------------------------------------
// Baseline (QLDB-style emulation)

type baselineSystem struct {
	db *baseline.DB
}

func newBaselineSystem() *baselineSystem { return &baselineSystem{db: baseline.New(nil)} }

func (s *baselineSystem) Name() string { return "Baseline" }

func (s *baselineSystem) Write(batch []workload.KeyValue) error {
	kvb := make([]baseline.KV, len(batch))
	for i, kv := range batch {
		kvb[i] = baseline.KV{Key: kv.Key, Value: kv.Value}
	}
	return s.db.Write(kvb)
}

// WriteVerified writes, seals, and then retrieves and checks a per-record
// revision proof for every written record — the commercial service's
// documented verification interface (per-document digest proofs).
func (s *baselineSystem) WriteVerified(batch []workload.KeyValue) error {
	if err := s.Write(batch); err != nil {
		return err
	}
	s.db.Seal()
	d := s.db.Digest()
	// Within a batch, the last write of a key wins in the current view.
	last := make(map[string][]byte, len(batch))
	for _, kv := range batch {
		last[string(kv.Key)] = kv.Value
	}
	for _, kv := range batch {
		rec, ok, p, err := s.db.VerifiedGet(kv.Key)
		if err != nil {
			return err
		}
		if !ok || !bytes.Equal(rec.Value, last[string(kv.Key)]) {
			return errors.New("bench: baseline write not materialized")
		}
		if err := p.Verify(d, rec); err != nil {
			return err
		}
	}
	return nil
}

func (s *baselineSystem) Read(key []byte) error {
	_, found, err := s.db.Get(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("bench: baseline missing key %q", key)
	}
	return nil
}

func (s *baselineSystem) ReadVerified(key []byte) error {
	rec, ok, p, err := s.db.VerifiedGet(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bench: baseline missing key %q", key)
	}
	return p.Verify(s.db.Digest(), rec)
}

func (s *baselineSystem) Range(lo, hi []byte) (int, error) {
	n := 0
	err := s.db.Scan(lo, hi, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// RangeVerified retrieves per-record proofs for the whole interval: "the
// retrieval on the proofs of resultant records ... must be processed by
// searching the digest in the ledger individually" (Section 6.2.2).
func (s *baselineSystem) RangeVerified(lo, hi []byte) (int, error) {
	recs, proofs, err := s.db.VerifiedScan(lo, hi)
	if err != nil {
		return 0, err
	}
	d := s.db.Digest()
	for i := range recs {
		if err := proofs[i].Verify(d, recs[i]); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}

func (s *baselineSystem) Seal() error {
	s.db.Seal()
	return nil
}

func (s *baselineSystem) Close() {}

// ---------------------------------------------------------------------------
// Non-intrusive composition (Figure 3 / Figure 8)

type nonintrusiveSystem struct {
	sys *nonintrusive.System
}

func newNonintrusiveSystem() (*nonintrusiveSystem, error) {
	sys, err := nonintrusive.Deploy()
	if err != nil {
		return nil, err
	}
	return &nonintrusiveSystem{sys: sys}, nil
}

func (s *nonintrusiveSystem) Name() string { return "Non-intrusive" }

func (s *nonintrusiveSystem) Write(batch []workload.KeyValue) error {
	kvb := make([]nonintrusive.KV, len(batch))
	for i, kv := range batch {
		kvb[i] = nonintrusive.KV{PK: kv.Key, Value: kv.Value}
	}
	return s.sys.Write(kvb)
}

// WriteVerified performs the dual commit plus the client's digest refresh
// against the ledger service (one extra round trip).
func (s *nonintrusiveSystem) WriteVerified(batch []workload.KeyValue) error {
	if err := s.Write(batch); err != nil {
		return err
	}
	_, _, err := s.sys.ReadVerified(batch[len(batch)-1].Key)
	return err
}

func (s *nonintrusiveSystem) Read(key []byte) error {
	_, found, err := s.sys.Read(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("bench: non-intrusive missing key %q", key)
	}
	return nil
}

func (s *nonintrusiveSystem) ReadVerified(key []byte) error {
	_, found, err := s.sys.ReadVerified(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("bench: non-intrusive missing key %q", key)
	}
	return nil
}

func (s *nonintrusiveSystem) Range(lo, hi []byte) (int, error) {
	keys, _, err := s.sys.Scan(lo, hi)
	return len(keys), err
}

func (s *nonintrusiveSystem) RangeVerified(lo, hi []byte) (int, error) { return 0, errNoVerify }

func (s *nonintrusiveSystem) Seal() error {
	if len(probeKeys) == 0 {
		return nil
	}
	// Pin the digest by performing one verified read.
	_, _, err := s.sys.ReadVerified(probeKeys[0])
	return err
}

func (s *nonintrusiveSystem) Close() { s.sys.Close() }

// probeKeys lets Seal know one existing key; set by the loader.
var probeKeys [][]byte

// load writes all records into a system in batches and settles the heap
// so the following measurement does not pay the loader's garbage.
func load(s system, records []workload.KeyValue, batchSize int) error {
	for _, b := range workload.Batches(records, batchSize) {
		if err := s.Write(b); err != nil {
			return err
		}
	}
	if len(records) > 0 {
		probeKeys = [][]byte{records[0].Key}
	}
	if err := s.Seal(); err != nil {
		return err
	}
	runtime.GC()
	return nil
}
