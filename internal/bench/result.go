// Package bench is the experiment harness: it regenerates every figure of
// the paper's evaluation (Section 6.2) plus the ablations DESIGN.md calls
// out, printing the same series the paper plots. Absolute numbers depend
// on the host; the shapes (who wins, by roughly what factor, where gaps
// widen) are the reproduction target — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Point is one measurement: X is the swept parameter (records, versions),
// Y the measured value.
type Point struct {
	X int     `json:"x"`
	Y float64 `json:"y"`
}

// Series is one line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Result is one regenerated figure or table.
type Result struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// Print writes the result as an aligned table, one row per X value and one
// column per series — the rows a plotting script (or eyeball) needs.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	headers := make([]string, 0, len(r.Series)+1)
	headers = append(headers, r.XLabel)
	for _, s := range r.Series {
		headers = append(headers, s.Name)
	}
	fmt.Fprintln(tw, strings.Join(headers, "\t"))

	// Collect the union of X values in first-seen order.
	var xs []int
	seen := map[int]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range r.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = formatY(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintf(w, "(%s)\n", r.YLabel)
}

func formatY(y float64) string {
	switch {
	case y >= 1000:
		return fmt.Sprintf("%.0f", y)
	case y >= 10:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.3f", y)
	}
}

// Get returns the series with the given name, for assertions in tests.
func (r Result) Get(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// At returns the Y value at x; ok is false when absent.
func (s Series) At(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
