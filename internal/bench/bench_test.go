package bench

import (
	"io"
	"testing"
)

// The harness tests run tiny sweeps: they assert the experiments execute
// end to end and that the paper's qualitative shapes hold even at reduced
// scale. Full-scale sweeps run via cmd/spitz-bench.

func smallConfig() Config {
	return Config{Sizes: []int{4000, 16000}, Ops: 6000, Batch: 500, Seed: 7}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(30)
	if err != nil {
		t.Fatal(err)
	}
	dedup, ok1 := res.Get("Storage-ForkBase")
	raw, ok2 := res.Get("Storage")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	d30, _ := dedup.At(30)
	r30, _ := raw.At(30)
	if d30 >= r30 {
		t.Fatalf("dedup (%f KB) not below raw (%f KB)", d30, r30)
	}
	// The paper's shape: dedup storage grows far slower than raw.
	d10, _ := dedup.At(10)
	r10, _ := raw.At(10)
	if (d30 - d10) > (r30-r10)/2 {
		t.Fatalf("dedup growth %.0f KB vs raw growth %.0f KB — savings too small", d30-d10, r30-r10)
	}
	res.Print(io.Discard)
}

func TestFig6ReadShape(t *testing.T) {
	res, err := Fig6Read(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	kvs, _ := res.Get("Immutable KVS")
	spitz, _ := res.Get("Spitz")
	spitzV, _ := res.Get("Spitz-verify")
	base, _ := res.Get("Baseline")
	baseV, _ := res.Get("Baseline-verify")
	for _, size := range []int{4000, 16000} {
		k, _ := kvs.At(size)
		s, _ := spitz.At(size)
		sv, _ := spitzV.At(size)
		b, _ := base.At(size)
		bv, _ := baseV.At(size)
		if k <= 0 || s <= 0 || sv <= 0 || b <= 0 || bv <= 0 {
			t.Fatalf("zero throughput at %d: %v %v %v %v %v", size, k, s, sv, b, bv)
		}
		// Paper shapes: verification costs Spitz far less than the
		// baseline; Spitz-verify beats Baseline-verify decisively.
		if sv >= s {
			t.Errorf("size %d: Spitz-verify (%.0f) not below Spitz (%.0f)", size, sv, s)
		}
		if bv >= b/4 {
			t.Errorf("size %d: Baseline-verify (%.0f) not far below Baseline (%.0f)", size, bv, b)
		}
		if sv <= 2*bv {
			t.Errorf("size %d: Spitz-verify (%.0f) not well above Baseline-verify (%.0f)", size, sv, bv)
		}
	}
	res.Print(io.Discard)
}

func TestFig6WriteShape(t *testing.T) {
	res, err := Fig6Write(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	kvs, _ := res.Get("Immutable KVS")
	spitz, _ := res.Get("Spitz")
	base, _ := res.Get("Baseline")
	for _, size := range []int{4000, 16000} {
		k, _ := kvs.At(size)
		s, _ := spitz.At(size)
		b, _ := base.At(size)
		if k <= 0 || s <= 0 || b <= 0 {
			t.Fatal("zero write throughput")
		}
		// Spitz comparable to KVS; baseline below Spitz (multiple views).
		// The margin is generous: shape, not precision, is asserted.
		if s < k/6 {
			t.Errorf("size %d: Spitz writes (%.0f) far below KVS (%.0f)", size, s, k)
		}
		if b > s*1.15 {
			t.Errorf("size %d: Baseline writes (%.0f) above Spitz (%.0f)", size, b, s)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := smallConfig()
	cfg.Ops = 400
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spitzV, _ := res.Get("Spitz-verify")
	baseV, _ := res.Get("Baseline-verify")
	for _, size := range []int{4000, 16000} {
		sv, _ := spitzV.At(size)
		bv, _ := baseV.At(size)
		if sv <= bv {
			t.Errorf("size %d: verified range Spitz (%.0f q/s) not above baseline (%.0f q/s)", size, sv, bv)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := Config{Sizes: []int{8000}, Ops: 4000, Batch: 500, Seed: 9}
	readRes, writeRes, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := readRes.Get("Spitz-verify")
	nv, _ := readRes.Get("Non-intrusive-verify")
	s, _ := sv.At(8000)
	n, _ := nv.At(8000)
	if s <= n {
		t.Errorf("verified reads: Spitz (%.0f) not above non-intrusive (%.0f)", s, n)
	}
	sw, _ := writeRes.Get("Spitz")
	nw, _ := writeRes.Get("Non-intrusive")
	s, _ = sw.At(8000)
	n, _ = nw.At(8000)
	if s <= n*1.1 {
		t.Errorf("writes: Spitz (%.0f) not above non-intrusive (%.0f)", s, n)
	}
}

func TestAblationSIRI(t *testing.T) {
	res, err := AblationSIRI(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s has %d metrics", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s metric %d is zero", s.Name, p.X)
			}
		}
	}
}

func TestAblationDeferred(t *testing.T) {
	res, err := AblationDeferred(5000, []int{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series[0]
	online, _ := s.At(1)
	deferred, _ := s.At(100)
	if online <= 0 || deferred <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestAblationTimestamps(t *testing.T) {
	res, err := AblationTimestamps([]int{1, 4}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatal("missing series")
	}
}

func TestAblationCC(t *testing.T) {
	res, err := AblationCC(1000, []float64{1.01, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	occ, _ := res.Get("MVCC-OCC")
	lo, _ := occ.At(101)
	hi, _ := occ.At(200)
	if hi < lo {
		t.Errorf("OCC aborts did not grow with contention: %.1f -> %.1f", lo, hi)
	}
	batched, _ := res.Get("Batched OCC (reordering)")
	bhi, _ := batched.At(200)
	if bhi > hi {
		t.Errorf("batched OCC (%.1f) aborts more than plain OCC (%.1f) under contention", bhi, hi)
	}
}

func TestResultPrinting(t *testing.T) {
	res := Result{Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a", Points: []Point{{X: 1, Y: 1500}, {X: 2, Y: 12.3}}},
			{Name: "b", Points: []Point{{X: 1, Y: 0.5}}}}}
	var buf sink
	res.Print(&buf)
	if buf.n == 0 {
		t.Fatal("nothing printed")
	}
	if _, ok := res.Get("missing"); ok {
		t.Fatal("Get found a missing series")
	}
	s, _ := res.Get("a")
	if _, ok := s.At(99); ok {
		t.Fatal("At found a missing point")
	}
}

type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) { s.n += len(p); return len(p), nil }
