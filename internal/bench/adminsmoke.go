package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spitz"
	"spitz/internal/obs"
	"spitz/internal/wire"
)

// AdminSmoke is the observability workload CI runs: a durable 2-shard
// cluster served over the wire protocol with the ops endpoint attached,
// a read replica mirroring it, and a mixed workload (writes across both
// shards, eager verified reads with proof-cache reuse, AuditMode reads
// batch-verified). It then scrapes the live admin endpoint and fails
// unless /metrics reports plausible nonzero series from every layer —
// wire, commit pipeline, WAL, proof cache, replication, auditor —
// /tracez holds a sampled verified read broken into wire/ledger/proof
// stages, and /healthz answers ok.
func AdminSmoke(dir string) error {
	// Sample every request so the trace assertion cannot flake, and keep
	// the smoke's sampling from leaking into later experiments.
	obs.DefaultTracer.SetSampleEvery(1)
	defer obs.DefaultTracer.SetSampleEvery(128)

	db, err := spitz.OpenCluster(dir, spitz.ClusterOptions{
		Shards:             2,
		Sync:               spitz.SyncAlways,
		CheckpointInterval: -1, // retain the whole log so the replica bootstraps from it
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ln, _ := wire.Listen()
	defer ln.Close()
	go db.Serve(ln)

	// The ops endpoint, exactly as spitz-server -admin-addr wires it.
	wire.PublishStats(obs.Default, db.ServerStats)
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer aln.Close()
	go obs.ServeAdmin(aln, obs.AdminOptions{Health: func() any { return db.ServerStats() }})
	base := "http://" + aln.Addr().String()

	// Write load across both shards.
	sc, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(ln) })
	if err != nil {
		return err
	}
	defer sc.Close()
	const keys = 200
	for i := 0; i < keys; i++ {
		if _, err := sc.Apply("admin-smoke", []spitz.Put{{Table: "t", Column: "c",
			PK: benchKey(i), Value: []byte(fmt.Sprintf("value-%08d", i))}}); err != nil {
			return fmt.Errorf("admin smoke write %d: %w", i, err)
		}
	}

	// Eager verified reads; the repeats against an unchanged digest are
	// the proof-cache hits the scrape asserts.
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if _, found, err := sc.GetVerified("t", "c", benchKey(i)); err != nil {
				return fmt.Errorf("verified read %d: %w", i, err)
			} else if !found {
				return fmt.Errorf("verified read %d: key missing", i)
			}
		}
	}

	// AuditMode reads: optimistic accept, one batch-proof RTT per digest.
	ac, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(ln) })
	if err != nil {
		return err
	}
	defer ac.Close()
	aud, err := ac.StartAudit(spitz.AuditMode{MaxPending: 64, MaxDelay: time.Hour})
	if err != nil {
		return err
	}
	for i := 0; i < 100; i++ {
		if _, _, err := ac.GetVerified("t", "c", benchKey(i)); err != nil {
			return fmt.Errorf("audited read %d: %w", i, err)
		}
	}
	if err := aud.Flush(); err != nil {
		return fmt.Errorf("audit flush: %w", err)
	}

	// Transport coverage: a compression-negotiated client pulls a large
	// compressible value (moves the compressed-vs-raw byte counters), and
	// a legacy gob client performs one read (moves the gob negotiation
	// counter) — CI sees both framings serve side by side.
	big := []byte(strings.Repeat("admin-smoke-compressible ", 256)) // ~6 KB
	if _, err := sc.Apply("admin-smoke-big", []spitz.Put{{Table: "t", Column: "big",
		PK: benchKey(0), Value: big}}); err != nil {
		return fmt.Errorf("admin smoke big write: %w", err)
	}
	cc, err := wire.ConnectOptions(ln, wire.ClientOptions{Compress: true})
	if err != nil {
		return err
	}
	if resp, err := cc.Do(wire.Request{Op: wire.OpGet, Table: "t", Column: "big", PK: benchKey(0)}); err != nil {
		cc.Close()
		return fmt.Errorf("compressed read: %w", err)
	} else if len(resp.Value) != len(big) {
		cc.Close()
		return fmt.Errorf("compressed read: got %d bytes, want %d", len(resp.Value), len(big))
	}
	cc.Close()
	gc, err := wire.ConnectOptions(ln, wire.ClientOptions{ForceGob: true})
	if err != nil {
		return err
	}
	if _, err := gc.Do(wire.Request{Op: wire.OpGet, Table: "t", Column: "c", PK: benchKey(0)}); err != nil {
		gc.Close()
		return fmt.Errorf("gob read: %w", err)
	}
	gc.Close()

	// A replica mirroring both shards, so replication series move.
	rep, err := spitz.NewReplica(func() (*wire.Client, error) { return wire.Connect(ln) },
		spitz.ReplicaOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	defer rep.Close()
	for i := 0; i < rep.Shards(); i++ {
		if err := rep.WaitForHeight(i, db.ServerStats().Shards[i].Height, 30*time.Second); err != nil {
			return fmt.Errorf("replica catch-up shard %d: %w", i, err)
		}
	}

	// A last round of eager verified reads: the trace ring holds only the
	// newest finished traces, and the audit and replication traffic above
	// would otherwise have rotated the staged get-verified traces out.
	for i := 0; i < 10; i++ {
		if _, _, err := sc.GetVerified("t", "c", benchKey(i)); err != nil {
			return fmt.Errorf("final verified read %d: %w", i, err)
		}
	}

	// Scrape the live endpoint and hold it to the acceptance bar.
	vals, err := scrapeText(base + "/metrics")
	if err != nil {
		return err
	}
	nonzero := []string{
		// wire
		`spitz_wire_ops_total{op="get-verified"}`,
		`spitz_wire_ops_total{op="put"}`,
		`spitz_wire_written_bytes_total`,
		// transport: both framings negotiated, frames flowing, and the
		// compressed transfer shrank its payload
		`spitz_wire_negotiations_total{proto="binary"}`,
		`spitz_wire_negotiations_total{proto="gob"}`,
		`spitz_wire_frames_read_total`,
		`spitz_wire_frames_written_total`,
		`spitz_wire_compress_raw_bytes_total`,
		`spitz_wire_compress_sent_bytes_total`,
		// commit pipeline
		`spitz_commit_blocks_total`,
		`spitz_commit_txns_total`,
		// WAL
		`spitz_wal_appends_total`,
		`spitz_wal_fsyncs_total`,
		// proof + node caches
		`spitz_proofcache_hits_total`,
		`spitz_nodecache_hits_total`,
		// replication, both sides
		`spitz_repl_frames_sent_total`,
		`spitz_replica_blocks_applied_total`,
		// auditor
		`spitz_audit_receipts_total`,
		`spitz_audit_audited_total`,
		`spitz_audit_batches_total`,
		// instance gauges published at scrape time
		`spitz_shard_height{shard="0"}`,
		`spitz_shard_height{shard="1"}`,
	}
	for _, name := range nonzero {
		if v, ok := vals[name]; !ok {
			return fmt.Errorf("admin smoke: /metrics missing series %s", name)
		} else if v <= 0 {
			return fmt.Errorf("admin smoke: /metrics series %s = %g, want > 0", name, v)
		}
	}
	// Follower-lag gauges must exist per attached follower (zero lag is
	// the healthy value, so only presence is asserted).
	for _, prefix := range []string{"spitz_follower_lag_blocks", "spitz_audit_pending",
		"spitz_wire_frames_inflight", "spitz_wire_pipeline_depth"} {
		if !hasSeries(vals, prefix) {
			return fmt.Errorf("admin smoke: /metrics missing %s*", prefix)
		}
	}
	if raw, sent := vals[`spitz_wire_compress_raw_bytes_total`], vals[`spitz_wire_compress_sent_bytes_total`]; sent >= raw {
		return fmt.Errorf("admin smoke: compression did not shrink payloads (raw %g, sent %g)", raw, sent)
	}

	// /tracez must hold a verified read broken into stages.
	if err := checkTracez(base + "/tracez"); err != nil {
		return err
	}

	// /healthz must answer ok.
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return err
	}
	if health.Status != "ok" {
		return fmt.Errorf("admin smoke: /healthz status %q", health.Status)
	}
	return nil
}

// scrapeText fetches a Prometheus text exposition into a series -> value
// map.
func scrapeText(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("admin smoke: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, nil
}

func hasSeries(vals map[string]float64, prefix string) bool {
	for name := range vals {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admin smoke: %s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// checkTracez asserts a sampled get-verified trace with wire and
// ledger/proof stage timings.
func checkTracez(url string) error {
	var tz struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := getJSON(url, &tz); err != nil {
		return err
	}
	for _, tr := range tz.Traces {
		if tr.Op != string(wire.OpGetVerified) {
			continue
		}
		var hasWire, hasProof bool
		for _, st := range tr.Stages {
			if strings.HasPrefix(st.Name, "wire.") {
				hasWire = true
			}
			if strings.HasPrefix(st.Name, "proof.") || strings.HasPrefix(st.Name, "ledger.") {
				hasProof = true
			}
		}
		if hasWire && hasProof {
			return nil
		}
	}
	return fmt.Errorf("admin smoke: /tracez holds no get-verified trace with wire + ledger/proof stages (%d traces)", len(tz.Traces))
}
