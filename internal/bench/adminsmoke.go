package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spitz"
	"spitz/internal/obs"
	"spitz/internal/wire"
)

// AdminSmoke is the observability workload CI runs: a durable 4-shard
// cluster served over the wire protocol with the ops endpoint (health
// rules included) attached, a read replica mirroring and serving it,
// and a mixed workload (cross-shard 2PC writes, eager verified reads
// with proof-cache reuse, AuditMode reads batch-verified, replica reads
// anchored to the primary). It then holds the live endpoint to the
// acceptance bar:
//
//   - /metrics reports plausible nonzero series from every layer;
//   - /tracez stitches one trace ID spanning client, replica and
//     primary nodes for an anchored verified range read, and another
//     spanning client and per-shard 2PC legs for a cross-shard write;
//   - /slowz captures an over-threshold request;
//   - an injected replication stall flips /healthz to degraded and
//     back once the stalled follower detaches;
//   - a tamper probe (served proofs mutated in flight) trips the audit
//     and pins /healthz at critical — the sticky rule runs last.
func AdminSmoke(dir string) error {
	// Sample every request so the trace assertions cannot flake, and
	// keep the smoke's sampling from leaking into later experiments.
	obs.DefaultTracer.SetSampleEvery(1)
	defer obs.DefaultTracer.SetSampleEvery(128)

	const shards = 4
	db, err := spitz.OpenCluster(dir, spitz.ClusterOptions{
		Shards:             shards,
		Sync:               spitz.SyncAlways,
		CheckpointInterval: -1, // retain the whole log so the replica bootstraps from it
	})
	if err != nil {
		return err
	}
	defer db.Close()
	ln, _ := wire.Listen()
	defer ln.Close()
	go db.Serve(ln)

	// The ops endpoint, exactly as spitz-server -admin-addr wires it:
	// scrape-time instance gauges plus the standard health rules. The
	// lag rule is tightened (4 blocks, no debounce to speak of) so the
	// injected stall below trips it quickly; the fsync rule is defused —
	// CI disks stall unpredictably and its firing path is unit-tested.
	wire.PublishStats(obs.Default, db.ServerStats)
	rules := obs.NewRules(obs.Default, obs.StandardRules(obs.StandardRuleOptions{
		FollowerLagBlocks: 4,
		FollowerLagFor:    time.Millisecond,
		WalFsyncP99:       time.Hour,
	}), 25*time.Millisecond)
	rules.Start()
	defer rules.Close()
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer aln.Close()
	go obs.ServeAdmin(aln, obs.AdminOptions{
		Health: func() any { return db.ServerStats() },
		Rules:  rules,
	})
	base := "http://" + aln.Addr().String()

	// Write load across all shards.
	sc, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(ln) })
	if err != nil {
		return err
	}
	defer sc.Close()
	const keys = 200
	for i := 0; i < keys; i++ {
		if _, err := sc.Apply("admin-smoke", []spitz.Put{{Table: "t", Column: "c",
			PK: benchKey(i), Value: []byte(fmt.Sprintf("value-%08d", i))}}); err != nil {
			return fmt.Errorf("admin smoke write %d: %w", i, err)
		}
	}

	// Eager verified reads; the repeats against an unchanged digest are
	// the proof-cache hits the scrape asserts.
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if _, found, err := sc.GetVerified("t", "c", benchKey(i)); err != nil {
				return fmt.Errorf("verified read %d: %w", i, err)
			} else if !found {
				return fmt.Errorf("verified read %d: key missing", i)
			}
		}
	}

	// AuditMode reads: optimistic accept, one batch-proof RTT per digest.
	ac, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(ln) })
	if err != nil {
		return err
	}
	defer ac.Close()
	aud, err := ac.StartAudit(spitz.AuditMode{MaxPending: 64, MaxDelay: time.Hour})
	if err != nil {
		return err
	}
	for i := 0; i < 100; i++ {
		if _, _, err := ac.GetVerified("t", "c", benchKey(i)); err != nil {
			return fmt.Errorf("audited read %d: %w", i, err)
		}
	}
	if err := aud.Flush(); err != nil {
		return fmt.Errorf("audit flush: %w", err)
	}

	// Transport coverage: a compression-negotiated client pulls a large
	// compressible value (moves the compressed-vs-raw byte counters), and
	// a legacy gob client performs one read (moves the gob negotiation
	// counter) — CI sees both framings serve side by side.
	big := []byte(strings.Repeat("admin-smoke-compressible ", 256)) // ~6 KB
	if _, err := sc.Apply("admin-smoke-big", []spitz.Put{{Table: "t", Column: "big",
		PK: benchKey(0), Value: big}}); err != nil {
		return fmt.Errorf("admin smoke big write: %w", err)
	}
	cc, err := wire.ConnectOptions(ln, wire.ClientOptions{Compress: true})
	if err != nil {
		return err
	}
	if resp, err := cc.Do(wire.Request{Op: wire.OpGet, Table: "t", Column: "big", PK: benchKey(0)}); err != nil {
		cc.Close()
		return fmt.Errorf("compressed read: %w", err)
	} else if len(resp.Value) != len(big) {
		cc.Close()
		return fmt.Errorf("compressed read: got %d bytes, want %d", len(resp.Value), len(big))
	}
	cc.Close()
	gc, err := wire.ConnectOptions(ln, wire.ClientOptions{ForceGob: true})
	if err != nil {
		return err
	}
	if _, err := gc.Do(wire.Request{Op: wire.OpGet, Table: "t", Column: "c", PK: benchKey(0)}); err != nil {
		gc.Close()
		return fmt.Errorf("gob read: %w", err)
	}
	gc.Close()

	// A replica mirroring every shard, served over its own listener so
	// clients can read from it.
	rep, err := spitz.NewReplica(func() (*wire.Client, error) { return wire.Connect(ln) },
		spitz.ReplicaOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	defer rep.Close()
	waitReplica := func() error {
		st := db.ServerStats()
		for i := 0; i < rep.Shards(); i++ {
			if err := rep.WaitForHeight(i, st.Shards[i].Height, 30*time.Second); err != nil {
				return fmt.Errorf("replica catch-up shard %d: %w", i, err)
			}
		}
		return nil
	}
	if err := waitReplica(); err != nil {
		return err
	}
	rln, _ := wire.Listen()
	defer rln.Close()
	go rep.Serve(rln)

	// The cross-node trace: a sharded client reads from the replica with
	// trust anchored at the primary. The first read pins per-shard trust
	// at the primary's digest; the writes after it force the next read
	// to prove the served digest a prefix of the pinned one — the
	// primary-side prefix-proof leg the stitched assertion wants.
	rsc, err := spitz.NewShardedClient(func() (*wire.Client, error) { return wire.Connect(rln) })
	if err != nil {
		return fmt.Errorf("replica-read client: %w", err)
	}
	defer rsc.Close()
	if err := rsc.AnchorTrust(func() (*wire.Client, error) { return wire.Connect(ln) }, 0); err != nil {
		return err
	}
	if _, err := rsc.RangePKVerified("t", "c", benchKey(0), benchKey(keys-1)); err != nil {
		return fmt.Errorf("anchored pin read: %w", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sc.Apply("admin-smoke-growth", []spitz.Put{{Table: "t", Column: "c",
			PK: benchKey(keys + i), Value: []byte("growth")}}); err != nil {
			return fmt.Errorf("growth write %d: %w", i, err)
		}
	}
	if err := waitReplica(); err != nil {
		return err
	}
	// One cross-shard write (2PC legs under the client's trace ID), then
	// the anchored fan-out read — both fetched from /tracez before later
	// traffic can rotate them out of the ring.
	var batch []spitz.Put
	for i := 0; len(batch) < shards && i < 64*shards; i++ {
		pk := benchKey(1000 + i)
		if sc.ShardFor(pk) == len(batch)%shards {
			batch = append(batch, spitz.Put{Table: "t", Column: "c", PK: pk, Value: []byte("2pc")})
		}
	}
	if len(batch) < 2 {
		return fmt.Errorf("admin smoke: found no cross-shard batch")
	}
	if _, err := sc.Apply("admin-smoke-2pc", batch); err != nil {
		return fmt.Errorf("2pc write: %w", err)
	}
	if _, err := rsc.RangePKVerified("t", "c", benchKey(0), benchKey(keys-1)); err != nil {
		return fmt.Errorf("anchored range read: %w", err)
	}
	if err := checkStitched(base+"/tracez", shards); err != nil {
		return err
	}

	// /slowz: drop one op's threshold to the floor, trip it with a real
	// request, and restore the default so later phases stay quiet.
	obs.DefaultSlowLog.SetOpThreshold(string(wire.OpGetVerified), time.Nanosecond)
	if _, _, err := sc.GetVerified("t", "c", benchKey(0)); err != nil {
		return fmt.Errorf("slow-op read: %w", err)
	}
	obs.DefaultSlowLog.SetOpThreshold(string(wire.OpGetVerified), 100*time.Millisecond)
	var slowz struct {
		Slow  []obs.SlowOp `json:"slow"`
		Total uint64       `json:"total"`
	}
	if err := getJSON(base+"/slowz", &slowz); err != nil {
		return err
	}
	if slowz.Total == 0 || len(slowz.Slow) == 0 {
		return fmt.Errorf("admin smoke: /slowz empty after a tripped threshold")
	}

	// A last round of eager verified reads: the trace ring holds only the
	// newest finished traces, and the stitched-trace traffic above would
	// otherwise have rotated the staged get-verified traces out.
	for i := 0; i < 10; i++ {
		if _, _, err := sc.GetVerified("t", "c", benchKey(i)); err != nil {
			return fmt.Errorf("final verified read %d: %w", i, err)
		}
	}

	// Scrape the live endpoint and hold it to the acceptance bar.
	vals, err := scrapeText(base + "/metrics")
	if err != nil {
		return err
	}
	nonzero := []string{
		// wire
		`spitz_wire_ops_total{op="get-verified"}`,
		`spitz_wire_ops_total{op="put"}`,
		`spitz_wire_written_bytes_total`,
		// transport: both framings negotiated, frames flowing, and the
		// compressed transfer shrank its payload
		`spitz_wire_negotiations_total{proto="binary"}`,
		`spitz_wire_negotiations_total{proto="gob"}`,
		`spitz_wire_frames_read_total`,
		`spitz_wire_frames_written_total`,
		`spitz_wire_compress_raw_bytes_total`,
		`spitz_wire_compress_sent_bytes_total`,
		// commit pipeline, including the cross-shard write above
		`spitz_commit_blocks_total`,
		`spitz_commit_txns_total`,
		`spitz_twopc_commits_total`,
		// WAL
		`spitz_wal_appends_total`,
		`spitz_wal_fsyncs_total`,
		// proof + node caches
		`spitz_proofcache_hits_total`,
		`spitz_nodecache_hits_total`,
		// replication, both sides
		`spitz_repl_frames_sent_total`,
		`spitz_replica_blocks_applied_total`,
		// auditor
		`spitz_audit_receipts_total`,
		`spitz_audit_audited_total`,
		`spitz_audit_batches_total`,
		// slow-op capture
		`spitz_slow_ops_total`,
	}
	// Instance gauges published at scrape time, one per shard.
	for i := 0; i < shards; i++ {
		nonzero = append(nonzero, fmt.Sprintf(`spitz_shard_height{shard="%d"}`, i))
	}
	for _, name := range nonzero {
		if v, ok := vals[name]; !ok {
			return fmt.Errorf("admin smoke: /metrics missing series %s", name)
		} else if v <= 0 {
			return fmt.Errorf("admin smoke: /metrics series %s = %g, want > 0", name, v)
		}
	}
	// Follower-lag gauges must exist per attached follower (zero lag is
	// the healthy value, so only presence is asserted). spitz_alerts_firing
	// is exported (value 0 — nothing is wrong yet).
	for _, prefix := range []string{"spitz_follower_lag_blocks", "spitz_audit_pending",
		"spitz_wire_frames_inflight", "spitz_wire_pipeline_depth", "spitz_alerts_firing"} {
		if !hasSeries(vals, prefix) {
			return fmt.Errorf("admin smoke: /metrics missing %s*", prefix)
		}
	}
	if raw, sent := vals[`spitz_wire_compress_raw_bytes_total`], vals[`spitz_wire_compress_sent_bytes_total`]; sent >= raw {
		return fmt.Errorf("admin smoke: compression did not shrink payloads (raw %g, sent %g)", raw, sent)
	}

	// /tracez must hold a verified read broken into stages.
	if err := checkTracez(base + "/tracez"); err != nil {
		return err
	}

	// /healthz must settle at ok (the replica's initial catch-up may
	// have tripped the tightened lag rule transiently).
	if err := waitHealth(base, "ok", 10*time.Second); err != nil {
		return err
	}

	// Fault 1: a stalled follower. Subscribe to shard 0's block stream
	// from its current height with callbacks that never acknowledge,
	// then commit shard-0 blocks past the lag threshold. The rules
	// engine must degrade /healthz, and recover it once the stalled
	// follower detaches.
	h0 := db.ServerStats().Shards[0].Height
	stalled, err := wire.Connect(ln)
	if err != nil {
		return err
	}
	release := make(chan struct{})
	stallDone := make(chan struct{})
	stall := func(uint64, []byte) (uint64, error) {
		<-release
		return 0, errors.New("stalled follower released")
	}
	go func() {
		defer close(stallDone)
		_ = stalled.StreamBlocks(1, h0, // wire shard id 1 = first shard
			func(snap []byte, h uint64) (uint64, error) { return stall(h, snap) },
			stall)
	}()
	written := 0
	for i := 0; written < 8 && i < 64*8; i++ {
		pk := benchKey(2000 + i)
		if sc.ShardFor(pk) != 0 {
			continue
		}
		if _, err := sc.Apply("admin-smoke-stall", []spitz.Put{{Table: "t", Column: "c",
			PK: pk, Value: []byte("stall")}}); err != nil {
			return fmt.Errorf("stall write: %w", err)
		}
		written++
	}
	if err := waitHealth(base, obs.HealthDegraded, 15*time.Second); err != nil {
		return fmt.Errorf("replication stall did not degrade health: %w", err)
	}
	if err := checkAlert(base, "replication-lag", true); err != nil {
		return err
	}
	close(release)
	stalled.Close()
	<-stallDone
	if err := waitHealth(base, "ok", 15*time.Second); err != nil {
		return fmt.Errorf("health did not recover after the stall detached: %w", err)
	}

	// Fault 2 — last, because the rule is sticky: shard 0's engine served
	// through a handler that flips one byte of every batch proof. The
	// audit must trip, and the critical tampering rule must pin /healthz
	// at critical and raise spitz_alerts_firing.
	tamperLn, _ := wire.Listen()
	tampered := wire.NewHandlerServer(wire.MutateHandler(wire.EngineHandler(db.Engine(0)),
		func(req wire.Request, resp *wire.Response) {
			if req.Op != wire.OpProveBatch || resp.BatchProof == nil ||
				resp.BatchProof.Points == nil || len(resp.BatchProof.Points.Nodes) == 0 {
				return
			}
			// Copy-on-write: served node bodies alias the engine's store.
			n := append([]byte(nil), resp.BatchProof.Points.Nodes[0]...)
			n[len(n)/2] ^= 0x01
			nodes := append([][]byte(nil), resp.BatchProof.Points.Nodes...)
			nodes[0] = n
			bp := *resp.BatchProof
			points := *bp.Points
			points.Nodes = nodes
			bp.Points = &points
			resp.BatchProof = &bp
		}))
	go tampered.Serve(tamperLn)
	defer tampered.Close()
	twc, err := wire.Connect(tamperLn)
	if err != nil {
		return err
	}
	tc := spitz.NewClient(twc)
	taud, err := tc.StartAudit(spitz.AuditMode{MaxPending: 8, MaxDelay: time.Hour})
	if err != nil {
		return err
	}
	audited := 0
	for i := 0; audited < 4 && i < 64*4; i++ {
		pk := benchKey(i)
		if db.ShardFor(pk) != 0 { // the probe serves shard 0's engine only
			continue
		}
		if _, _, err := tc.GetVerified("t", "c", pk); err != nil {
			return fmt.Errorf("probe read: %w", err)
		}
		audited++
	}
	if err := taud.Flush(); err == nil {
		return fmt.Errorf("admin smoke: tampered batch proof passed the audit")
	}
	twc.Close()
	if err := waitHealth(base, obs.HealthCritical, 15*time.Second); err != nil {
		return fmt.Errorf("tampering evidence did not turn health critical: %w", err)
	}
	if err := checkAlert(base, "audit-tampering", true); err != nil {
		return err
	}
	vals, err = scrapeText(base + "/metrics")
	if err != nil {
		return err
	}
	if vals["spitz_alerts_firing"] < 1 {
		return fmt.Errorf("admin smoke: spitz_alerts_firing = %g with the tamper rule firing",
			vals["spitz_alerts_firing"])
	}
	if vals[`spitz_alert_firing{rule="audit-tampering"}`] != 1 {
		return fmt.Errorf("admin smoke: per-rule firing gauge missing")
	}
	return nil
}

// waitHealth polls /healthz until it reports the wanted status — the
// rules engine evaluates on its own clock, so transitions land within
// an interval, not instantly.
func waitHealth(base, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		var health struct {
			Status string `json:"status"`
		}
		if err := getJSON(base+"/healthz", &health); err != nil {
			return err
		}
		last = health.Status
		if last == want {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("admin smoke: /healthz stayed %q, want %q", last, want)
}

// checkAlert asserts one named rule's firing state on /alertz.
func checkAlert(base, rule string, firing bool) error {
	var alerts struct {
		Health string          `json:"health"`
		Rules  []obs.RuleState `json:"rules"`
	}
	if err := getJSON(base+"/alertz", &alerts); err != nil {
		return err
	}
	for _, r := range alerts.Rules {
		if r.Name != rule {
			continue
		}
		if r.Firing() != firing {
			return fmt.Errorf("admin smoke: /alertz rule %s state %q, want firing=%v", rule, r.State, firing)
		}
		return nil
	}
	return fmt.Errorf("admin smoke: /alertz lacks rule %s", rule)
}

// scrapeText fetches a Prometheus text exposition into a series -> value
// map.
func scrapeText(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("admin smoke: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, nil
}

func hasSeries(vals map[string]float64, prefix string) bool {
	for name := range vals {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admin smoke: %s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// checkTracez asserts a sampled get-verified request resolved into wire
// and ledger/proof stage timings. The stages live on different spans of
// the same trace — wire framing on the serving span, proof assembly on
// the shard-dispatch child — so the check aggregates by trace ID.
func checkTracez(url string) error {
	var tz struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := getJSON(url, &tz); err != nil {
		return err
	}
	type cover struct{ served, hasWire, hasProof bool }
	byTrace := map[uint64]*cover{}
	for _, tr := range tz.Traces {
		c := byTrace[tr.TraceID]
		if c == nil {
			c = &cover{}
			byTrace[tr.TraceID] = c
		}
		if tr.Op == string(wire.OpGetVerified) {
			c.served = true
		}
		for _, st := range tr.Stages {
			if strings.HasPrefix(st.Name, "wire.") {
				c.hasWire = true
			}
			if strings.HasPrefix(st.Name, "proof.") || strings.HasPrefix(st.Name, "ledger.") {
				c.hasProof = true
			}
		}
	}
	for _, c := range byTrace {
		if c.served && c.hasWire && c.hasProof {
			return nil
		}
	}
	return fmt.Errorf("admin smoke: /tracez holds no get-verified trace with wire + ledger/proof stages (%d traces)", len(tz.Traces))
}

// checkStitched asserts the two cross-node stitched timelines the smoke
// staged: an anchored verified range read whose single trace ID spans
// the client root, one replica-node server span per shard and a
// primary-node prefix-proof leg; and a cross-shard write whose trace ID
// covers the client root and the coordinator's per-shard 2PC legs.
func checkStitched(url string, shards int) error {
	var tz struct {
		Stitched []obs.StitchedTrace `json:"stitched"`
	}
	if err := getJSON(url, &tz); err != nil {
		return err
	}
	var readOK, writeOK bool
	for _, st := range tz.Stitched {
		if len(st.Spans) == 0 || st.Spans[0].Depth != 0 {
			continue
		}
		switch st.Spans[0].Op {
		case "client.range-verified":
			replicaSpans := 0
			var prefixLeg, primarySpan bool
			for _, sp := range st.Spans {
				if sp.Node == "replica" {
					replicaSpans++
				}
				if sp.Op == "client.prefix-proof" {
					prefixLeg = true
				}
				if sp.Node == "primary" {
					primarySpan = true
				}
			}
			if st.Spans[0].Node == "client" && replicaSpans >= shards && prefixLeg && primarySpan {
				readOK = true
			}
		case "client.apply":
			twopcShards := map[string]bool{}
			for _, sp := range st.Spans {
				if sp.Op == "twopc.prepare" || sp.Op == "twopc.commit" {
					twopcShards[sp.Node] = true
				}
			}
			if st.Spans[0].Node == "client" && len(twopcShards) >= 2 {
				writeOK = true
			}
		}
	}
	if !readOK {
		return fmt.Errorf("admin smoke: no stitched trace spans client + %d replica reads + primary prefix proof (%d stitched)",
			shards, len(tz.Stitched))
	}
	if !writeOK {
		return fmt.Errorf("admin smoke: no stitched trace spans client + cross-shard 2PC legs (%d stitched)", len(tz.Stitched))
	}
	return nil
}
