package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"spitz"
	"spitz/internal/wire"
)

// ReadPathThresholds is the checked-in acceptance bar for the wire read
// path (ci/bench-thresholds.json). Latency ceilings are deliberately
// loose — CI hosts vary several-fold — while allocation ceilings are
// tight: allocations per op are deterministic for a fixed code path, so
// a codec regression (say, sliding back to reflection-based encoding)
// trips them even on a fast machine.
type ReadPathThresholds struct {
	UnverifiedNsMax     float64 `json:"unverified_ns_max"`
	DeferredNsMax       float64 `json:"deferred_ns_max"`
	UnverifiedAllocsMax float64 `json:"unverified_allocs_max"`
	DeferredAllocsMax   float64 `json:"deferred_allocs_max"`
}

// ReadPathSmoke measures the two production read modes over the wire —
// unverified gets (the floor) and AuditMode verified reads (deferred
// batch auditing) — and fails if either exceeds the checked-in
// thresholds. CI runs it as the bench-regression gate: a transport or
// codec change that slows the hot path or adds per-op allocations fails
// the build rather than landing silently.
func ReadPathSmoke(thresholdsPath string) error {
	raw, err := os.ReadFile(thresholdsPath)
	if err != nil {
		return fmt.Errorf("readpath smoke: %w", err)
	}
	var th ReadPathThresholds
	if err := json.Unmarshal(raw, &th); err != nil {
		return fmt.Errorf("readpath smoke: %s: %w", thresholdsPath, err)
	}

	db := spitz.Open(spitz.Options{})
	defer db.Close()
	ln, _ := wire.Listen()
	defer ln.Close()
	go db.Serve(ln)

	wc, err := wire.Connect(ln)
	if err != nil {
		return err
	}
	cl := spitz.NewClient(wc)
	defer cl.Close()
	if p := cl.Proto(); p != wire.ProtoBinary {
		return fmt.Errorf("readpath smoke: negotiated %q, want %q", p, wire.ProtoBinary)
	}

	const keys = 1000
	puts := make([]spitz.Put, 0, 100)
	for i := 0; i < keys; i += 100 {
		puts = puts[:0]
		for j := i; j < i+100; j++ {
			puts = append(puts, spitz.Put{Table: "t", Column: "c",
				PK: benchKey(j), Value: []byte(fmt.Sprintf("value-%08d", j))})
		}
		if _, err := cl.Apply("readpath-load", puts); err != nil {
			return fmt.Errorf("readpath smoke load: %w", err)
		}
	}

	const warmup, ops = 500, 4000

	// Unverified floor.
	for i := 0; i < warmup; i++ {
		if _, err := cl.Get("t", "c", benchKey(i%keys)); err != nil {
			return err
		}
	}
	unvNs, unvAllocs, err := timedOps(ops, func(i int) error {
		_, err := cl.Get("t", "c", benchKey(i%keys))
		return err
	})
	if err != nil {
		return err
	}

	// Deferred verified reads: optimistic accept + batch audit, flush
	// inside the timed region so the proof RTTs are paid for.
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 512, MaxDelay: time.Hour})
	if err != nil {
		return err
	}
	for i := 0; i < warmup; i++ {
		if _, _, err := cl.GetVerified("t", "c", benchKey(i%keys)); err != nil {
			return err
		}
	}
	if err := aud.Flush(); err != nil {
		return err
	}
	defNs, defAllocs, err := timedOps(ops, func(i int) error {
		_, _, err := cl.GetVerified("t", "c", benchKey(i%keys))
		if err == nil && i == ops-1 {
			err = aud.Flush()
		}
		return err
	})
	if err != nil {
		return err
	}

	fmt.Printf("readpath smoke (%s):\n", cl.Proto())
	fmt.Printf("  unverified: %8.0f ns/op  %5.1f allocs/op  (max %.0f ns, %.0f allocs)\n",
		unvNs, unvAllocs, th.UnverifiedNsMax, th.UnverifiedAllocsMax)
	fmt.Printf("  deferred:   %8.0f ns/op  %5.1f allocs/op  (max %.0f ns, %.0f allocs)\n",
		defNs, defAllocs, th.DeferredNsMax, th.DeferredAllocsMax)

	var fails []string
	if unvNs > th.UnverifiedNsMax {
		fails = append(fails, fmt.Sprintf("unverified %0.f ns/op > %.0f", unvNs, th.UnverifiedNsMax))
	}
	if defNs > th.DeferredNsMax {
		fails = append(fails, fmt.Sprintf("deferred %0.f ns/op > %.0f", defNs, th.DeferredNsMax))
	}
	if unvAllocs > th.UnverifiedAllocsMax {
		fails = append(fails, fmt.Sprintf("unverified %.1f allocs/op > %.0f", unvAllocs, th.UnverifiedAllocsMax))
	}
	if defAllocs > th.DeferredAllocsMax {
		fails = append(fails, fmt.Sprintf("deferred %.1f allocs/op > %.0f", defAllocs, th.DeferredAllocsMax))
	}
	if len(fails) > 0 {
		return fmt.Errorf("readpath smoke: regression past thresholds: %v", fails)
	}
	return nil
}

// timedOps runs fn n times and reports mean wall time and process-wide
// allocations per op. The allocation figure matches what go test's
// -benchmem reports for the same loop: every goroutine the op touches
// (client and in-process server alike) counts.
func timedOps(n int, fn func(i int) error) (nsPerOp, allocsPerOp float64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n), nil
}
