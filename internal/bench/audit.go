package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spitz"
	"spitz/internal/core"
	"spitz/internal/wire"
)

// VerifyAuditSmoke is the deferred-verification workload CI runs: an
// AuditMode client against a live served engine under concurrent write
// churn — every optimistic read must batch-verify — followed by a
// tamper probe against a second server whose batch proofs are corrupted
// in flight, which must trip ErrTampered (and poison further reads).
// It returns an error on any deviation, in either direction: a verified
// honest run that fails, or a tampered run that passes.
func VerifyAuditSmoke() error {
	eng := core.New(core.Options{})
	const keys = 500
	for lo := 0; lo < keys; lo += 100 {
		puts := make([]core.Put, 0, 100)
		for i := lo; i < lo+100; i++ {
			puts = append(puts, core.Put{Table: "t", Column: "c",
				PK: benchKey(i), Value: []byte(fmt.Sprintf("value-%08d", i))})
		}
		if _, err := eng.Apply("load", puts); err != nil {
			return err
		}
	}

	// Phase 1: honest server, audited reads under write churn.
	honestLn, _ := wire.Listen()
	honest := wire.NewServer(eng)
	go honest.Serve(honestLn)
	defer honest.Close()

	wc, err := wire.Connect(honestLn)
	if err != nil {
		return err
	}
	cl := spitz.NewClient(wc)
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 64, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if _, err := eng.Apply("churn", []core.Put{{Table: "t", Column: "c",
				PK: benchKey(i % keys), Value: []byte(fmt.Sprintf("churn-%08d", i))}}); err != nil {
				writeErr = err
				return
			}
		}
	}()

	rng := uint64(1)
	for i := 0; i < 500; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if _, found, err := cl.GetVerified("t", "c", benchKey(int(rng%keys))); err != nil {
			close(stop)
			wg.Wait()
			return fmt.Errorf("audited read %d: %w", i, err)
		} else if !found {
			close(stop)
			wg.Wait()
			return fmt.Errorf("audited read %d: key missing", i)
		}
		if i%50 == 0 {
			if _, err := cl.RangePKVerified("t", "c", benchKey(10), benchKey(20)); err != nil {
				close(stop)
				wg.Wait()
				return fmt.Errorf("audited range %d: %w", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if writeErr != nil {
		return fmt.Errorf("write churn: %w", writeErr)
	}
	if err := aud.Flush(); err != nil {
		return fmt.Errorf("final audit flush: %w", err)
	}
	st := aud.Stats()
	if st.Audited != st.Receipts || st.Receipts == 0 {
		return fmt.Errorf("audit incomplete: %+v", st)
	}
	if err := cl.Close(); err != nil {
		return fmt.Errorf("audited client close: %w", err)
	}

	// Phase 2: tamper probe. The same engine served through a handler
	// that flips one byte of every batch proof — the audit must trip.
	tamperLn, _ := wire.Listen()
	tampered := wire.NewHandlerServer(wire.MutateHandler(wire.EngineHandler(eng),
		func(req wire.Request, resp *wire.Response) {
			if req.Op != wire.OpProveBatch || resp.BatchProof == nil ||
				resp.BatchProof.Points == nil || len(resp.BatchProof.Points.Nodes) == 0 {
				return
			}
			// Copy-on-write: served node bodies alias the engine's store.
			n := append([]byte(nil), resp.BatchProof.Points.Nodes[0]...)
			n[len(n)/2] ^= 0x01
			nodes := append([][]byte(nil), resp.BatchProof.Points.Nodes...)
			nodes[0] = n
			bp := *resp.BatchProof
			points := *bp.Points
			points.Nodes = nodes
			bp.Points = &points
			resp.BatchProof = &bp
		}))
	go tampered.Serve(tamperLn)
	defer tampered.Close()

	twc, err := wire.Connect(tamperLn)
	if err != nil {
		return err
	}
	tcl := spitz.NewClient(twc)
	defer tcl.Close()
	taud, err := tcl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if _, _, err := tcl.GetVerified("t", "c", benchKey(i)); err != nil {
			return fmt.Errorf("tamper probe optimistic read %d failed early: %w", i, err)
		}
	}
	err = taud.Flush()
	if err == nil {
		return errors.New("tamper probe: corrupted batch proof was accepted")
	}
	if !errors.Is(err, spitz.ErrTampered) {
		return fmt.Errorf("tamper probe misreported: %w", err)
	}
	if _, _, err := tcl.GetVerified("t", "c", benchKey(0)); !errors.Is(err, spitz.ErrTampered) {
		return fmt.Errorf("tamper probe: poisoned client kept reading: %v", err)
	}
	return nil
}
