// Package proof implements the client side of Spitz verification
// (Section 5.3): clients keep the latest ledger digest locally,
// recalculate digests from received proofs, and compare. Two timing modes
// are supported, mirroring Section 3.2's "Online verification vs Deferred
// verification": online verifies every proof as it arrives; deferred
// queues proofs and verifies them in batch, "which means the transactions
// are verified asynchronously in batch" for higher throughput.
package proof

import (
	"errors"
	"fmt"
	"sync"

	"spitz/internal/ledger"
	"spitz/internal/mtree"
)

// Errors reported by the verifier.
var (
	// ErrTampered means a proof or digest refresh failed: the data, the
	// history, or the execution was modified.
	ErrTampered = errors.New("proof: verification failed, tampering detected")
)

// Verifier tracks a client's trusted ledger digest and checks query proofs
// against it. Safe for concurrent use.
type Verifier struct {
	mu      sync.Mutex
	digest  ledger.Digest
	trusted bool // false until the first digest is pinned
	pending []ledger.Proof

	verified int64
	deferred int64
}

// NewVerifier returns a verifier with no pinned digest; the first Advance
// pins trust-on-first-use, after which every refresh must prove
// consistency with the pinned history.
func NewVerifier() *Verifier { return &Verifier{} }

// Digest returns the currently trusted digest (zero before the first
// Advance).
func (v *Verifier) Digest() ledger.Digest {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.digest
}

// Advance moves the trusted digest forward. The consistency proof must
// show the old digest's ledger is a prefix of the new one; otherwise the
// server rewrote history and ErrTampered is returned.
func (v *Verifier) Advance(next ledger.Digest, cons mtree.ConsistencyProof) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.trusted {
		v.digest = next
		v.trusted = true
		return nil
	}
	if next.Height < v.digest.Height {
		return fmt.Errorf("%w: digest went backwards (%d -> %d)", ErrTampered, v.digest.Height, next.Height)
	}
	if cons.OldSize != int(v.digest.Height) || cons.NewSize != int(next.Height) {
		return fmt.Errorf("%w: consistency proof sizes %d/%d do not match digests %d/%d",
			ErrTampered, cons.OldSize, cons.NewSize, v.digest.Height, next.Height)
	}
	if err := cons.Verify(v.digest.Root, next.Root); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.digest = next
	return nil
}

// VerifyNow checks a proof immediately against the trusted digest (online
// verification).
func (v *Verifier) VerifyNow(p ledger.Proof) error {
	v.mu.Lock()
	d := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted {
		return fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	if err := p.Verify(d); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.mu.Lock()
	v.verified++
	v.mu.Unlock()
	return nil
}

// VerifyAsOf checks a proof against an older digest d that the caller
// has shown — via a verified consistency proof — to be a prefix of the
// trusted ledger. Under write churn, a query response's proof can be
// for a digest the client's trust has already moved past; proving the
// prefix relation and verifying against d keeps the stale-but-honest
// result usable instead of forcing an endless refetch race. The caller
// is responsible for the prefix check; this method only refuses digests
// that could not possibly be prefixes (taller than the trusted ledger).
func (v *Verifier) VerifyAsOf(p ledger.Proof, d ledger.Digest) error {
	v.mu.Lock()
	cur := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted {
		return fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	if d.Height > cur.Height {
		return fmt.Errorf("%w: digest height %d beyond trusted %d", ErrTampered, d.Height, cur.Height)
	}
	if err := p.Verify(d); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.mu.Lock()
	v.verified++
	v.mu.Unlock()
	return nil
}

// VerifyBatchAsOf checks an aggregated multi-key batch proof against an
// older digest d that the caller has shown — via a verified consistency
// proof — to be a prefix of the trusted ledger, counting every covered
// read as verified. This is the batch analogue of VerifyAsOf: query
// responses are proven at the digest the server executed at, which under
// write churn can trail the client's already-advanced trust. The caller
// is responsible for the prefix check; this method only refuses digests
// that could not possibly be prefixes (taller than the trusted ledger).
func (v *Verifier) VerifyBatchAsOf(p ledger.BatchProof, d ledger.Digest, reads int) error {
	v.mu.Lock()
	cur := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted {
		return fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	if d.Height > cur.Height {
		return fmt.Errorf("%w: digest height %d beyond trusted %d", ErrTampered, d.Height, cur.Height)
	}
	if err := p.Verify(d); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.mu.Lock()
	v.verified += int64(reads)
	v.mu.Unlock()
	return nil
}

// VerifyBlock checks that a block header is part of the ledger the
// trusted digest commits to. Clients use it to verify *writes*: the block
// exists, and its recorded write-set hash can then be compared against the
// locally computed one (batch-level write verification, Section 5.3).
func (v *Verifier) VerifyBlock(header ledger.BlockHeader, inc mtree.InclusionProof) error {
	v.mu.Lock()
	d := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted {
		return fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	if header.Height >= d.Height || inc.TreeSize != int(d.Height) || inc.Index != int(header.Height) {
		return fmt.Errorf("%w: block %d not covered by digest %d", ErrTampered, header.Height, d.Height)
	}
	if err := inc.Verify(d.Root, mtree.LeafHash(header.Encode())); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.mu.Lock()
	v.verified++
	v.mu.Unlock()
	return nil
}

// VerifyBatchNow checks an aggregated multi-key batch proof against the
// trusted digest (the server half of a deferred-audit flush), counting
// every covered read as verified.
func (v *Verifier) VerifyBatchNow(p ledger.BatchProof, reads int) error {
	v.mu.Lock()
	d := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted {
		return fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	if err := p.Verify(d); err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	v.mu.Lock()
	v.verified += int64(reads)
	v.mu.Unlock()
	return nil
}

// NoteDeferred records n reads accepted optimistically (deferred-audit
// receipts) so Stats reflects the deferred volume.
func (v *Verifier) NoteDeferred(n int) {
	v.mu.Lock()
	v.deferred += int64(n)
	v.mu.Unlock()
}

// Defer queues a proof for later batch verification.
func (v *Verifier) Defer(p ledger.Proof) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pending = append(v.pending, p)
	v.deferred++
}

// Pending returns the number of queued proofs.
func (v *Verifier) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pending)
}

// Flush verifies every queued proof against the trusted digest and clears
// the queue. It returns the number verified; on the first failure it stops
// and reports which proof failed.
func (v *Verifier) Flush() (int, error) {
	v.mu.Lock()
	batch := v.pending
	v.pending = nil
	d := v.digest
	trusted := v.trusted
	v.mu.Unlock()
	if !trusted && len(batch) > 0 {
		return 0, fmt.Errorf("%w: no trusted digest pinned", ErrTampered)
	}
	for i, p := range batch {
		if err := p.Verify(d); err != nil {
			return i, fmt.Errorf("%w: deferred proof %d: %v", ErrTampered, i, err)
		}
	}
	v.mu.Lock()
	v.verified += int64(len(batch))
	v.mu.Unlock()
	return len(batch), nil
}

// Stats reports how many proofs were verified and deferred in total.
func (v *Verifier) Stats() (verified, deferred int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.verified, v.deferred
}
