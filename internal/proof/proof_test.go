package proof

import (
	"errors"
	"fmt"
	"testing"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/ledger"
	"spitz/internal/mtree"
)

// testLedger builds a ledger with n blocks of small writes.
func testLedger(t *testing.T, n int) *ledger.Ledger {
	t.Helper()
	l := ledger.New(cas.NewMemory())
	for i := 0; i < n; i++ {
		v := uint64(i + 1)
		cells := []cellstore.Cell{{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("k%03d", i)), Version: v, Value: []byte(fmt.Sprintf("v%d", i))}}
		if _, err := l.Commit(v, nil, cells); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestAdvanceTrustOnFirstUse(t *testing.T) {
	l := testLedger(t, 3)
	v := NewVerifier()
	if err := v.Advance(l.Digest(), mtree.ConsistencyProof{}); err != nil {
		t.Fatalf("first Advance: %v", err)
	}
	if v.Digest() != l.Digest() {
		t.Fatal("digest not pinned")
	}
}

func TestAdvanceWithConsistency(t *testing.T) {
	l := testLedger(t, 3)
	v := NewVerifier()
	old := l.Digest()
	if err := v.Advance(old, mtree.ConsistencyProof{}); err != nil {
		t.Fatal(err)
	}
	// Grow the ledger and advance with a proper consistency proof.
	l.Commit(100, nil, []cellstore.Cell{{Table: "t", Column: "c", PK: []byte("x"), Version: 100, Value: []byte("v")}})
	cons, err := l.ConsistencyProof(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Advance(l.Digest(), cons); err != nil {
		t.Fatalf("Advance: %v", err)
	}
}

func TestAdvanceRejectsForkedHistory(t *testing.T) {
	l := testLedger(t, 3)
	v := NewVerifier()
	if err := v.Advance(l.Digest(), mtree.ConsistencyProof{}); err != nil {
		t.Fatal(err)
	}
	// A genuinely divergent history: same heights, different content.
	l2 := ledger.New(cas.NewMemory())
	for i := 0; i < 5; i++ {
		v64 := uint64(i + 1)
		cells := []cellstore.Cell{{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("k%03d", i)), Version: v64, Value: []byte("FORKED")}}
		if _, err := l2.Commit(v64, nil, cells); err != nil {
			t.Fatal(err)
		}
	}
	cons, _ := l2.ConsistencyProof(ledger.Digest{Height: 3})
	if err := v.Advance(l2.Digest(), cons); !errors.Is(err, ErrTampered) {
		t.Fatalf("fork accepted: %v", err)
	}
}

func TestAdvanceRejectsRollback(t *testing.T) {
	l := testLedger(t, 5)
	v := NewVerifier()
	if err := v.Advance(l.Digest(), mtree.ConsistencyProof{}); err != nil {
		t.Fatal(err)
	}
	short := testLedger(t, 2)
	if err := v.Advance(short.Digest(), mtree.ConsistencyProof{}); !errors.Is(err, ErrTampered) {
		t.Fatal("rollback accepted")
	}
}

func TestVerifyNow(t *testing.T) {
	l := testLedger(t, 4)
	v := NewVerifier()
	v.Advance(l.Digest(), mtree.ConsistencyProof{})
	_, ok, p, err := l.ProveGetLatest(3, "t", "c", []byte("k002"))
	if err != nil || !ok {
		t.Fatal("read failed")
	}
	if err := v.VerifyNow(p); err != nil {
		t.Fatalf("VerifyNow: %v", err)
	}
	verified, _ := v.Stats()
	if verified != 1 {
		t.Fatalf("verified = %d", verified)
	}
}

func TestVerifyNowWithoutDigest(t *testing.T) {
	l := testLedger(t, 2)
	_, _, p, _ := l.ProveGetLatest(1, "t", "c", []byte("k000"))
	v := NewVerifier()
	if err := v.VerifyNow(p); !errors.Is(err, ErrTampered) {
		t.Fatal("verification without pinned digest succeeded")
	}
}

func TestVerifyNowDetectsTampering(t *testing.T) {
	l := testLedger(t, 4)
	v := NewVerifier()
	v.Advance(l.Digest(), mtree.ConsistencyProof{})
	_, _, p, _ := l.ProveGetLatest(3, "t", "c", []byte("k001"))
	p.Header.Version ^= 1
	if err := v.VerifyNow(p); !errors.Is(err, ErrTampered) {
		t.Fatal("tampered proof accepted")
	}
}

func TestDeferredBatch(t *testing.T) {
	l := testLedger(t, 6)
	v := NewVerifier()
	v.Advance(l.Digest(), mtree.ConsistencyProof{})
	for i := 0; i < 5; i++ {
		_, _, p, err := l.ProveGetLatest(5, "t", "c", []byte(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		v.Defer(p)
	}
	if v.Pending() != 5 {
		t.Fatalf("Pending = %d", v.Pending())
	}
	n, err := v.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n != 5 || v.Pending() != 0 {
		t.Fatalf("Flush verified %d, pending %d", n, v.Pending())
	}
	verified, deferred := v.Stats()
	if verified != 5 || deferred != 5 {
		t.Fatalf("stats = %d/%d", verified, deferred)
	}
}

func TestDeferredBatchDetectsTampering(t *testing.T) {
	l := testLedger(t, 4)
	v := NewVerifier()
	v.Advance(l.Digest(), mtree.ConsistencyProof{})
	good1, _, p1, _ := l.ProveGetLatest(3, "t", "c", []byte("k000"))
	_ = good1
	_, _, bad, _ := l.ProveGetLatest(3, "t", "c", []byte("k001"))
	bad.Header.CellCount++
	_, _, p3, _ := l.ProveGetLatest(3, "t", "c", []byte("k002"))
	v.Defer(p1)
	v.Defer(bad)
	v.Defer(p3)
	idx, err := v.Flush()
	if !errors.Is(err, ErrTampered) {
		t.Fatal("tampered deferred proof accepted")
	}
	if idx != 1 {
		t.Fatalf("failure index = %d, want 1", idx)
	}
}

func TestFlushEmptyQueue(t *testing.T) {
	v := NewVerifier()
	n, err := v.Flush()
	if err != nil || n != 0 {
		t.Fatalf("empty flush = %d, %v", n, err)
	}
}

func TestDeferWithoutDigestFailsAtFlush(t *testing.T) {
	l := testLedger(t, 2)
	_, _, p, _ := l.ProveGetLatest(1, "t", "c", []byte("k000"))
	v := NewVerifier()
	v.Defer(p)
	if _, err := v.Flush(); !errors.Is(err, ErrTampered) {
		t.Fatal("flush without digest succeeded")
	}
}
