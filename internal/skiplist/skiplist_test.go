package skiplist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New[string](1)
	if l.Len() != 0 {
		t.Fatal("nonzero len")
	}
	if _, ok := l.Get(42); ok {
		t.Fatal("found in empty list")
	}
	if _, ok := l.Min(); ok {
		t.Fatal("Min on empty list")
	}
	l.AscendRange(0, 100, func(uint64, string) bool {
		t.Fatal("scan yielded on empty list")
		return false
	})
}

func TestPutGet(t *testing.T) {
	l := New[int](2)
	const n = 5000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		if !l.Put(uint64(i), i) {
			t.Fatalf("Put(%d) reported existing", i)
		}
	}
	if l.Len() != n {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := l.Get(uint64(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := l.Get(n + 1); ok {
		t.Fatal("found absent key")
	}
}

func TestUpsert(t *testing.T) {
	l := New[string](3)
	l.Put(7, "a")
	if l.Put(7, "b") {
		t.Fatal("overwrite reported as insert")
	}
	v, _ := l.Get(7)
	if v != "b" || l.Len() != 1 {
		t.Fatal("upsert failed")
	}
}

func TestDelete(t *testing.T) {
	l := New[int](4)
	for i := 0; i < 1000; i++ {
		l.Put(uint64(i), i)
	}
	for i := 0; i < 1000; i += 3 {
		if !l.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	if l.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	for i := 0; i < 1000; i++ {
		_, ok := l.Get(uint64(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	l := New[int](5)
	for i := 0; i < 100; i++ {
		l.Put(uint64(i*10), i)
	}
	var got []uint64
	l.AscendRange(95, 250, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendFromAndEarlyStop(t *testing.T) {
	l := New[int](6)
	for i := 0; i < 50; i++ {
		l.Put(uint64(i), i)
	}
	var n int
	l.AscendFrom(40, func(uint64, int) bool { n++; return true })
	if n != 10 {
		t.Fatalf("AscendFrom saw %d", n)
	}
	n = 0
	l.AscendFrom(0, func(uint64, int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestMin(t *testing.T) {
	l := New[int](7)
	l.Put(30, 1)
	l.Put(10, 2)
	l.Put(20, 3)
	if m, ok := l.Min(); !ok || m != 10 {
		t.Fatalf("Min = %d,%v", m, ok)
	}
	l.Delete(10)
	if m, _ := l.Min(); m != 20 {
		t.Fatalf("Min after delete = %d", m)
	}
}

// Property: skip list behaves like a sorted map under random ops.
func TestQuickOracle(t *testing.T) {
	type op struct {
		K   uint16
		V   int
		Del bool
	}
	f := func(ops []op, seed int64) bool {
		l := New[int](seed)
		oracle := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.K)
			if o.Del {
				_, present := oracle[k]
				if l.Delete(k) != present {
					return false
				}
				delete(oracle, k)
			} else {
				_, present := oracle[k]
				if l.Put(k, o.V) == present {
					return false
				}
				oracle[k] = o.V
			}
		}
		if l.Len() != len(oracle) {
			return false
		}
		keys := make([]uint64, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		good := true
		l.AscendFrom(0, func(k uint64, v int) bool {
			if i >= len(keys) || k != keys[i] || v != oracle[k] {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
