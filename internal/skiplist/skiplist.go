// Package skiplist implements a probabilistic skip list keyed by uint64.
//
// Spitz's inverted index uses "a skip list to better support range query"
// for numeric cell values (Section 5, "Inverted Index"): the list maps a
// numeric value to the posting list of universal keys whose cells hold
// that value, and range scans walk the bottom level.
package skiplist

import "math/rand"

const maxLevel = 24

// List maps uint64 keys to values of type V in sorted order. The zero
// value is not usable; create with New. Not safe for concurrent mutation.
type List[V any] struct {
	head *elem[V]
	rng  *rand.Rand
	size int
}

type elem[V any] struct {
	key   uint64
	value V
	next  []*elem[V]
}

// New returns an empty list with a deterministic level generator seeded by
// seed (use different seeds to decorrelate lists; determinism keeps tests
// and benchmarks reproducible).
func New[V any](seed int64) *List[V] {
	return &List[V]{
		head: &elem[V]{next: make([]*elem[V], maxLevel)},
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of keys.
func (l *List[V]) Len() int { return l.size }

// randomLevel draws a geometric level in [1, maxLevel].
func (l *List[V]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update with the rightmost element before key at
// every level and returns the candidate element (which may equal key).
func (l *List[V]) findPredecessors(key uint64, update *[maxLevel]*elem[V]) *elem[V] {
	x := l.head
	for i := maxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// Get returns the value under key.
func (l *List[V]) Get(key uint64) (V, bool) {
	var update [maxLevel]*elem[V]
	e := l.findPredecessors(key, &update)
	if e != nil && e.key == key {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key, reporting whether the key
// was newly inserted.
func (l *List[V]) Put(key uint64, value V) bool {
	var update [maxLevel]*elem[V]
	e := l.findPredecessors(key, &update)
	if e != nil && e.key == key {
		e.value = value
		return false
	}
	lvl := l.randomLevel()
	ne := &elem[V]{key: key, value: value, next: make([]*elem[V], lvl)}
	for i := 0; i < lvl; i++ {
		ne.next[i] = update[i].next[i]
		update[i].next[i] = ne
	}
	l.size++
	return true
}

// Delete removes key, reporting whether it was present.
func (l *List[V]) Delete(key uint64) bool {
	var update [maxLevel]*elem[V]
	e := l.findPredecessors(key, &update)
	if e == nil || e.key != key {
		return false
	}
	for i := 0; i < len(e.next); i++ {
		if update[i].next[i] == e {
			update[i].next[i] = e.next[i]
		}
	}
	l.size--
	return true
}

// AscendRange calls fn for each key in [start, end) in order; fn returning
// false stops. end==^uint64(0) with inclusive semantics is unreachable;
// use AscendFrom for unbounded scans.
func (l *List[V]) AscendRange(start, end uint64, fn func(key uint64, value V) bool) {
	var update [maxLevel]*elem[V]
	e := l.findPredecessors(start, &update)
	for ; e != nil && e.key < end; e = e.next[0] {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// AscendFrom calls fn for each key >= start until fn returns false or the
// list ends.
func (l *List[V]) AscendFrom(start uint64, fn func(key uint64, value V) bool) {
	var update [maxLevel]*elem[V]
	e := l.findPredecessors(start, &update)
	for ; e != nil; e = e.next[0] {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// Min returns the smallest key; ok is false when the list is empty.
func (l *List[V]) Min() (uint64, bool) {
	if l.head.next[0] == nil {
		return 0, false
	}
	return l.head.next[0].key, true
}
