package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/durable"
	"spitz/internal/ledger"
	"spitz/internal/mtree"
	"spitz/internal/obs"
	"spitz/internal/query"
	"spitz/internal/twopc"
	"spitz/internal/txn"
	"spitz/internal/txn/hlc"
	"spitz/internal/wal"
	"spitz/internal/wire"
)

// Options configures a Cluster.
type Options struct {
	// Shards is the number of shards (processor nodes). When opening an
	// existing durable cluster it may be left 0 to adopt the recorded
	// count; a non-zero value that disagrees with the recorded count is
	// an error, because FNV routing silently misplaces every key
	// otherwise.
	Shards int
	// Dir, when non-empty, makes every shard durable: shard i keeps its
	// write-ahead log and checkpoints under <Dir>/shard-NNN/ (the
	// internal/durable layout), and <Dir>/CLUSTER records the shard
	// count. Empty means a memory-only cluster.
	Dir string

	// Engine options, applied to every shard (see core.Options).
	Mode             txn.Mode
	MaintainInverted bool
	MaxBatchTxns     int
	MaxBatchDelay    time.Duration

	// Durability options, applied per shard (see durable.Options);
	// ignored without Dir.
	Sync                  wal.SyncPolicy
	SyncInterval          time.Duration
	SegmentSize           int64
	CheckpointInterval    time.Duration
	CheckpointEveryBlocks uint64
	// Store and NodeCacheMB select and bound each shard's node-store
	// backend (see durable.Options); the cache budget applies per shard.
	Store       durable.StoreKind
	NodeCacheMB int
}

// Cluster shards the key space across processor nodes, each with its own
// full engine — its own ledger, group-commit pipeline and (optionally)
// durable data directory. Cross-shard transactions commit with 2PC;
// timestamps come from a hybrid logical clock so no global oracle
// bottleneck exists (Section 5.2). Every write routes through the
// shard's 2PC participant, so distributed read validation and local
// writes share one lock discipline.
type Cluster struct {
	opts   Options
	clock  *hlc.Clock
	shards []clusterShard
	coord  *twopc.Coordinator
}

type clusterShard struct {
	eng  *core.Engine
	dur  *durable.Manager // nil for memory-only clusters
	part *twopc.ShardParticipant
}

const clusterManifest = durable.ClusterMarkerName
const clusterMagic = "spitz-cluster-v1"

// IsClusterDir reports whether dir holds a sharded cluster layout (the
// CLUSTER manifest is present). Tools use it to decide between the
// single-engine and cluster open paths instead of hardcoding the name.
func IsClusterDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, clusterManifest))
	return err == nil
}

// Open creates or reopens a cluster. For durable clusters every shard
// recovers independently: newest checkpoint restored, WAL tail replayed
// with per-block hash verification, and the shared clock advanced past
// every replayed version.
func Open(opts Options) (*Cluster, error) {
	if opts.Dir != "" {
		recorded, have, err := readClusterManifest(opts.Dir)
		if err != nil {
			return nil, err
		}
		switch {
		case have && opts.Shards == 0:
			opts.Shards = recorded
		case have && opts.Shards != recorded:
			return nil, fmt.Errorf("server: cluster in %s has %d shards, not %d — rerouting keys would lose them",
				opts.Dir, recorded, opts.Shards)
		case !have:
			// A directory with a single-engine layout at the top level
			// must not be sharded in place: its data would be silently
			// ignored.
			for _, name := range []string{"MANIFEST", "wal"} {
				if _, err := os.Stat(filepath.Join(opts.Dir, name)); err == nil {
					return nil, fmt.Errorf("server: %s holds a single-engine database (found %s); it cannot be opened as a cluster",
						opts.Dir, name)
				}
			}
		}
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	clock := hlc.New()
	source := txn.ClockSource{Clock: clock}
	c := &Cluster{
		opts:  opts,
		clock: clock,
		coord: twopc.NewCoordinator(source),
	}
	for i := 0; i < opts.Shards; i++ {
		var sh clusterShard
		if opts.Dir == "" {
			sh.eng = core.New(core.Options{
				Mode:             opts.Mode,
				MaintainInverted: opts.MaintainInverted,
				Timestamps:       source,
				MaxBatchTxns:     opts.MaxBatchTxns,
				MaxBatchDelay:    opts.MaxBatchDelay,
			})
		} else {
			m, err := durable.Open(filepath.Join(opts.Dir, shardDirName(i)), durable.Options{
				Mode:                  opts.Mode,
				Timestamps:            source,
				MaintainInverted:      opts.MaintainInverted,
				MaxBatchTxns:          opts.MaxBatchTxns,
				MaxBatchDelay:         opts.MaxBatchDelay,
				Sync:                  opts.Sync,
				SyncInterval:          opts.SyncInterval,
				SegmentSize:           opts.SegmentSize,
				CheckpointInterval:    opts.CheckpointInterval,
				CheckpointEveryBlocks: opts.CheckpointEveryBlocks,
				Store:                 opts.Store,
				NodeCacheMB:           opts.NodeCacheMB,
			})
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("server: shard %d: %w", i, err)
			}
			sh.dur = m
			sh.eng = m.Engine()
		}
		sh.part = twopc.NewShardParticipant(sh.eng.TxnStore())
		c.coord.Register(shardName(i), sh.part)
		c.shards = append(c.shards, sh)
	}
	if opts.Dir != "" {
		if err := writeClusterManifest(opts.Dir, opts.Shards); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func shardName(i int) string    { return fmt.Sprintf("shard-%d", i) }
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

func readClusterManifest(dir string) (shards int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, clusterManifest))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 || lines[0] != clusterMagic {
		return 0, false, fmt.Errorf("server: bad cluster manifest magic in %s", dir)
	}
	for _, line := range lines[1:] {
		var n int
		if _, serr := fmt.Sscanf(line, "shards %d", &n); serr == nil && n > 0 {
			return n, true, nil
		}
	}
	return 0, false, fmt.Errorf("server: cluster manifest in %s names no shard count", dir)
}

func writeClusterManifest(dir string, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := fmt.Sprintf("%s\nshards %d\n", clusterMagic, shards)
	tmp := filepath.Join(dir, clusterManifest+".tmp")
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, clusterManifest)); err != nil {
		return err
	}
	return wal.SyncDir(dir)
}

// ShardIndex routes a primary key to its shard by FNV-1a hash. Clients
// and servers must agree on this function; it is the cluster's shard
// map.
func ShardIndex(pk []byte, shards int) int {
	h := fnv.New32a()
	h.Write(pk)
	return int(h.Sum32() % uint32(shards))
}

// ShardFor routes a primary key to its shard index.
func (c *Cluster) ShardFor(pk []byte) int { return ShardIndex(pk, len(c.shards)) }

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.shards) }

// Engine returns the engine owning shard i, for shard-local queries and
// per-shard verified reads.
func (c *Cluster) Engine(i int) *core.Engine { return c.shards[i].eng }

// Durable returns shard i's durability manager, or nil for memory-only
// clusters. The replication layer builds per-shard sources from it.
func (c *Cluster) Durable(i int) *durable.Manager { return c.shards[i].dur }

// Close stops background work and releases every shard's data
// directory. Memory-only clusters release nothing.
func (c *Cluster) Close() error {
	var first error
	for i := range c.shards {
		if d := c.shards[i].dur; d != nil {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Checkpoint forces a durable snapshot of every shard now.
func (c *Cluster) Checkpoint() error {
	for i := range c.shards {
		if d := c.shards[i].dur; d != nil {
			if err := d.Checkpoint(); err != nil {
				return fmt.Errorf("server: shard %d checkpoint: %w", i, err)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Writes

// Apply commits a batch of cell writes atomically. Writes grouped on one
// shard commit through that shard's 2PC participant (respecting prepared
// transactions' locks); writes spanning shards commit with full
// two-phase commit, so a batch is never half-applied. It returns the
// coordinator's commit timestamp.
func (c *Cluster) Apply(statement string, puts []core.Put) (uint64, error) {
	return c.applyTraced(nil, statement, puts)
}

// applyTraced is Apply threading the serving request's trace into the
// 2PC coordinator, so per-shard prepare/commit legs appear as child
// spans of the write that caused them.
func (c *Cluster) applyTraced(tr *obs.Trace, statement string, puts []core.Put) (uint64, error) {
	if len(puts) == 0 {
		return 0, errors.New("server: empty write batch")
	}
	byShard := make(map[int][]txn.Write)
	for _, p := range puts {
		si := c.ShardFor(p.PK)
		byShard[si] = append(byShard[si], txn.Write{
			Key:    cellstore.CellPrefix(p.Table, p.Column, p.PK),
			Value:  p.Value,
			Delete: p.Tombstone,
		})
	}
	reqs := make([]twopc.Request, 0, len(byShard))
	for _, si := range sortedShards(byShard) {
		reqs = append(reqs, twopc.Request{
			Shard:     shardName(si),
			Statement: statement,
			Writes:    byShard[si],
		})
	}
	return c.coord.ExecuteTraced(tr, reqs)
}

// sortedShards returns the map's shard indices in ascending order: 2PC
// requests must be built deterministically, not in map iteration order,
// so prepare order (and therefore conflict behaviour) is reproducible
// run to run.
func sortedShards[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for si := range m {
		out = append(out, si)
	}
	sort.Ints(out)
	return out
}

// ---------------------------------------------------------------------------
// Reads

// Get reads a cell from its owning shard.
func (c *Cluster) Get(table, column string, pk []byte) ([]byte, error) {
	return c.shards[c.ShardFor(pk)].eng.Get(table, column, pk)
}

// GetRow reads several columns of one row (all columns of a row live on
// the pk's shard) from a single ledger snapshot.
func (c *Cluster) GetRow(table string, pk []byte, columns []string) (map[string][]byte, error) {
	return c.shards[c.ShardFor(pk)].eng.GetRow(table, pk, columns)
}

// GetVerified serves a verified point read at the cluster level: the
// owning shard produces the proof, and the returned shard index tells
// the client which entry of the ClusterDigest (or which per-shard
// verifier) the proof must be checked against.
func (c *Cluster) GetVerified(table, column string, pk []byte) (int, core.VerifiedResult, error) {
	si := c.ShardFor(pk)
	res, err := c.shards[si].eng.GetVerified(table, column, pk)
	return si, res, err
}

// History returns every version of a cell, newest first. The scan
// fans out and merges so the result is correct even for keys written
// before a (hypothetical) reshard; with stable routing only the owning
// shard contributes.
func (c *Cluster) History(table, column string, pk []byte) ([]cellstore.Cell, error) {
	parts, err := c.scatter(nil, "history", func(eng *core.Engine) ([]cellstore.Cell, error) {
		return eng.History(table, column, pk)
	})
	if err != nil {
		return nil, err
	}
	out := flatten(parts)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Version > out[j].Version })
	return out, nil
}

// RangePK scans the latest live cells of one column with primary keys in
// [pkLo, pkHi) across every shard in parallel, merging the per-shard
// results into one pk-ordered scan.
func (c *Cluster) RangePK(table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, error) {
	return c.rangePKTraced(nil, table, column, pkLo, pkHi)
}

func (c *Cluster) rangePKTraced(tr *obs.Trace, table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, error) {
	parts, err := c.scatter(tr, "scatter.range", func(eng *core.Engine) ([]cellstore.Cell, error) {
		return eng.RangePK(table, column, pkLo, pkHi)
	})
	if err != nil {
		return nil, err
	}
	return MergeCellsByPK(parts), nil
}

// Columns returns the union of every shard's observed columns for a
// table, sorted — a table's rows spread across shards, so no single
// shard necessarily sees the whole schema.
func (c *Cluster) Columns(table string) []string {
	seen := make(map[string]struct{})
	for i := range c.shards {
		for _, col := range c.shards[i].eng.Columns(table) {
			seen[col] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for col := range seen {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// LookupEqual returns cells of one column whose latest value equals
// value, gathered from every shard's inverted index in parallel
// (requires Options.MaintainInverted).
func (c *Cluster) LookupEqual(table, column string, value []byte) ([]cellstore.Cell, error) {
	return c.lookupEqualTraced(nil, table, column, value)
}

func (c *Cluster) lookupEqualTraced(tr *obs.Trace, table, column string, value []byte) ([]cellstore.Cell, error) {
	parts, err := c.scatter(tr, "scatter.lookup-eq", func(eng *core.Engine) ([]cellstore.Cell, error) {
		return eng.LookupEqual(table, column, value)
	})
	if err != nil {
		return nil, err
	}
	return MergeCellsByPK(parts), nil
}

// scatter runs fn against every shard engine concurrently and collects
// the per-shard results in shard order. When the originating request is
// traced, each shard's leg records a child span named op.
func (c *Cluster) scatter(tr *obs.Trace, op string, fn func(*core.Engine) ([]cellstore.Cell, error)) ([][]cellstore.Cell, error) {
	parts := make([][]cellstore.Cell, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leg := tr.ChildAt(op, shardName(i))
			parts[i], errs[i] = fn(c.shards[i].eng)
			leg.Finish()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

func flatten(parts [][]cellstore.Cell) []cellstore.Cell {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]cellstore.Cell, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// MergeCellsByPK merges per-shard result lists into one list ordered by
// (table, column, pk) — each shard's list is already ordered, and shards
// hold disjoint keys. The sharded client reuses it so client-side
// fan-out merges define the same scan order as server-side ones.
func MergeCellsByPK(parts [][]cellstore.Cell) []cellstore.Cell {
	out := flatten(parts)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return string(a.PK) < string(b.PK)
	})
	return out
}

// ---------------------------------------------------------------------------
// Digests

// Digest returns the cluster digest: every shard's ledger digest plus
// the combined root. Shards advance independently, so the vector is a
// per-shard snapshot, not an atomic cut — each entry is individually
// verifiable against that shard's proofs.
func (c *Cluster) Digest() ledger.ClusterDigest {
	shards := make([]ledger.Digest, len(c.shards))
	for i := range c.shards {
		shards[i] = c.shards[i].eng.Digest()
	}
	return ledger.NewClusterDigest(shards)
}

// ConsistencyUpdate returns the current cluster digest together with one
// consistency proof per shard showing that shard's ledger extends the
// corresponding entry of old — history was appended to on every shard,
// never rewritten. Each (digest, proof) pair is captured atomically per
// shard.
func (c *Cluster) ConsistencyUpdate(old ledger.ClusterDigest) (ledger.ClusterDigest, []mtree.ConsistencyProof, error) {
	if len(old.Shards) != len(c.shards) {
		return ledger.ClusterDigest{}, nil, fmt.Errorf("server: old digest has %d shards, cluster has %d",
			len(old.Shards), len(c.shards))
	}
	shards := make([]ledger.Digest, len(c.shards))
	proofs := make([]mtree.ConsistencyProof, len(c.shards))
	for i := range c.shards {
		d, p, err := c.shards[i].eng.ConsistencyUpdate(old.Shards[i])
		if err != nil {
			return ledger.ClusterDigest{}, nil, fmt.Errorf("server: shard %d consistency: %w", i, err)
		}
		shards[i], proofs[i] = d, p
	}
	return ledger.NewClusterDigest(shards), proofs, nil
}

// ---------------------------------------------------------------------------
// Cross-shard transactions

// Txn is an interactive cluster transaction: reads collect the versions
// to validate, writes stage, and Commit runs two-phase commit across
// every touched shard. Unlike a single-engine transaction it has no
// snapshot timestamp — reads observe each shard's latest state and 2PC
// validates them at prepare (OCC backward validation with read/write
// locks held to the commit point).
type Txn struct {
	c        *Cluster
	reads    map[int]map[string]uint64 // shard -> ref -> version observed
	writes   map[int][]txn.Write       // shard -> staged writes, in stage order
	writeIdx map[string]writeLoc       // ref -> location of its staged write
	done     bool
}

type writeLoc struct {
	shard int
	index int
}

// Begin starts a cluster transaction.
func (c *Cluster) Begin() *Txn {
	return &Txn{
		c:        c,
		reads:    make(map[int]map[string]uint64),
		writes:   make(map[int][]txn.Write),
		writeIdx: make(map[string]writeLoc),
	}
}

// Get reads a cell: own staged writes first, then the owning shard's
// latest state, recording the observed version for commit validation.
func (t *Txn) Get(table, column string, pk []byte) ([]byte, bool, error) {
	if t.done {
		return nil, false, txn.ErrDone
	}
	ref := cellstore.CellPrefix(table, column, pk)
	if loc, ok := t.writeIdx[string(ref)]; ok {
		w := t.writes[loc.shard][loc.index]
		if w.Delete {
			return nil, false, nil
		}
		return w.Value, true, nil
	}
	si := t.c.ShardFor(pk)
	val, ver, found, err := t.c.shards[si].part.ReadLatest(ref, ^uint64(0))
	if err != nil {
		return nil, false, err
	}
	m := t.reads[si]
	if m == nil {
		m = make(map[string]uint64)
		t.reads[si] = m
	}
	m[string(ref)] = ver // 0 when absent: "observed absent"
	if !found {
		return nil, false, nil
	}
	return val, true, nil
}

// Put stages a cell write.
func (t *Txn) Put(table, column string, pk, value []byte) error {
	return t.stage(table, column, pk, txn.Write{Value: value})
}

// Delete stages a cell deletion (tombstone).
func (t *Txn) Delete(table, column string, pk []byte) error {
	return t.stage(table, column, pk, txn.Write{Delete: true})
}

func (t *Txn) stage(table, column string, pk []byte, w txn.Write) error {
	if t.done {
		return txn.ErrDone
	}
	ref := cellstore.CellPrefix(table, column, pk)
	w.Key = ref
	if loc, ok := t.writeIdx[string(ref)]; ok {
		t.writes[loc.shard][loc.index] = w
		return nil
	}
	si := t.c.ShardFor(pk)
	t.writeIdx[string(ref)] = writeLoc{shard: si, index: len(t.writes[si])}
	t.writes[si] = append(t.writes[si], w)
	return nil
}

// requests assembles the per-shard 2PC requests, sorted by shard index
// so the prepare order is deterministic.
func (t *Txn) requests(statement string) []twopc.Request {
	touched := make(map[int]struct{}, len(t.reads)+len(t.writes))
	for si := range t.reads {
		touched[si] = struct{}{}
	}
	for si := range t.writes {
		touched[si] = struct{}{}
	}
	reqs := make([]twopc.Request, 0, len(touched))
	for _, si := range sortedShards(touched) {
		reqs = append(reqs, twopc.Request{
			Shard:     shardName(si),
			Statement: statement,
			Reads:     t.reads[si],
			Writes:    t.writes[si],
		})
	}
	return reqs
}

// Commit validates and applies the transaction across its shards via
// two-phase commit, returning the coordinator's commit timestamp. On
// txn.ErrConflict (wrapped in twopc.ErrAborted) the transaction rolled
// back everywhere and may be retried.
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, txn.ErrDone
	}
	t.done = true
	reqs := t.requests("TXN")
	if len(reqs) == 0 {
		return 0, nil // read-free, write-free transaction
	}
	return t.c.coord.Execute(reqs)
}

// Abort discards the transaction. Nothing was prepared, so there is
// nothing to roll back.
func (t *Txn) Abort() {
	t.done = true
}

// ---------------------------------------------------------------------------
// Stats

// ShardStats describes one shard's engine.
type ShardStats struct {
	Height uint64          // committed ledger blocks
	Batch  core.BatchStats // group-commit pipeline behaviour
}

// Stats is a point-in-time snapshot of cluster counters.
type Stats struct {
	Shards  []ShardStats
	Commits int64 // 2PC transactions committed
	Aborts  int64 // 2PC transactions aborted
}

// Stats returns per-shard and coordinator counters.
func (c *Cluster) Stats() Stats {
	s := Stats{Shards: make([]ShardStats, len(c.shards))}
	for i := range c.shards {
		s.Shards[i] = ShardStats{
			Height: c.shards[i].eng.Ledger().Height(),
			Batch:  c.shards[i].eng.BatchStats(),
		}
	}
	s.Commits, s.Aborts = c.coord.Stats()
	return s
}

// ---------------------------------------------------------------------------
// Wire protocol

// Handle implements wire.Handler: one listener serves the whole cluster.
// Requests with Shard > 0 address shard Shard-1 directly (how sharded
// clients keep proofs checkable against per-shard digests); requests
// with Shard = 0 are routed by primary key, scattered across shards, or
// answered at the cluster level, so unsharded clients still work.
func (c *Cluster) Handle(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpShardMap:
		return wire.Response{ShardCount: len(c.shards)}
	case wire.OpClusterDigest:
		d := c.Digest()
		return wire.Response{Cluster: &d}
	case wire.OpPut:
		// Writes always route through the cluster write path — grouping
		// by key ownership and respecting 2PC locks — regardless of the
		// Shard field: a client-chosen shard must not bypass routing.
		puts := make([]core.Put, len(req.Puts))
		for i, p := range req.Puts {
			puts[i] = core.Put{Table: p.Table, Column: p.Column, PK: p.PK,
				Value: p.Value, Tombstone: p.Tombstone}
		}
		version, err := c.applyTraced(req.Trace(), req.Statement, puts)
		if err != nil {
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{Found: true, Header: ledger.BlockHeader{Version: version}}
	case wire.OpRestore:
		return wire.Response{Err: "wire: a cluster's state is owned by its shards; restore is not supported"}
	case wire.OpQuery:
		// Intercepted before shard addressing: a statement's routing is
		// decided by what it does, not by a client-chosen shard.
		return c.handleQuery(req)
	}
	if req.Shard > 0 {
		if req.Shard > len(c.shards) {
			return wire.Response{Err: fmt.Sprintf("wire: shard %d beyond cluster of %d", req.Shard-1, len(c.shards))}
		}
		resp := c.dispatchShard(req.Shard-1, req)
		resp.Shard = req.Shard
		return resp
	}
	switch req.Op {
	case wire.OpGet, wire.OpGetVerified, wire.OpHistory:
		si := c.ShardFor(req.PK)
		resp := c.dispatchShard(si, req)
		resp.Shard = si + 1
		return resp
	case wire.OpRange:
		cells, err := c.rangePKTraced(req.Trace(), req.Table, req.Column, req.PK, req.PKHi)
		if err != nil {
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{Found: len(cells) > 0, Cells: cells}
	case wire.OpLookupEq:
		cells, err := c.lookupEqualTraced(req.Trace(), req.Table, req.Column, req.Value)
		if err != nil {
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{Found: len(cells) > 0, Cells: cells}
	case wire.OpRangeVer:
		return wire.Response{Err: "wire: verified range scans across a cluster must target one shard at a time (set Shard)"}
	case wire.OpDigest, wire.OpConsistency, wire.OpProveBatch:
		return wire.Response{Err: "wire: digests and audit proofs are per-shard in a cluster; set Shard, use " +
			string(wire.OpClusterDigest) + ", or connect with a sharded client (DialSharded) for ongoing verified reads"}
	case wire.OpSnapshot:
		return wire.Response{Err: "wire: snapshots are per-shard in a cluster; set Shard"}
	default:
		return wire.Response{Err: fmt.Sprintf("wire: unknown op %q", req.Op)}
	}
}

// handleQuery serves OpQuery at the cluster level. Mutations always
// route through the cluster write path — grouping writes by key
// ownership and committing with 2PC across the touched shards — no
// matter what Shard says. Point SELECTs and HISTORY route to the owning
// shard, so a SELECT's proof stays checkable against that shard's
// digest. Range, lookup and aggregate SELECTs must target one shard at
// a time (set Shard); sharded clients fan them out and merge the
// per-shard verified results, which is the only way a proof per shard
// can exist — there is no cluster-wide authenticated structure to prove
// a cross-shard scan against.
func (c *Cluster) handleQuery(req wire.Request) wire.Response {
	stmt, err := query.Parse(req.Statement)
	if err != nil {
		return wire.Response{Err: err.Error()}
	}
	switch s := stmt.(type) {
	case query.Insert, query.Update, query.Delete:
		out, err := query.ExecParsed(clusterStore{c: c, tr: req.Trace()}, req.Statement, stmt)
		if err != nil {
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{RowsAffected: out.RowsAffected, Height: out.Block}
	case query.History:
		cells, err := c.History(s.Table, s.Column, []byte(s.PK))
		if err != nil {
			return wire.Response{Err: err.Error()}
		}
		return wire.Response{Found: len(cells) > 0, Cells: cells}
	case query.Select:
		if req.Shard > 0 {
			if req.Shard > len(c.shards) {
				return wire.Response{Err: fmt.Sprintf("wire: shard %d beyond cluster of %d", req.Shard-1, len(c.shards))}
			}
			resp := c.dispatchShard(req.Shard-1, req)
			resp.Shard = req.Shard
			return resp
		}
		if s.HasPK {
			si := c.ShardFor([]byte(s.PK))
			resp := c.dispatchShard(si, req)
			resp.Shard = si + 1
			return resp
		}
		return wire.Response{Err: "wire: range, lookup and aggregate queries are proven per shard; " +
			"set Shard, or connect with a sharded client which fans out and merges verified results"}
	}
	return wire.Response{Err: "wire: unhandled statement"}
}

// Exec parses and executes one statement against the whole cluster, in
// process (the embedded form of OpQuery): mutations group by key
// ownership and commit with 2PC, reads scatter-gather across the
// shards. No proofs are produced — in-process callers trust their own
// memory; verified queries are a client concern.
func (c *Cluster) Exec(statement string) (query.Result, error) {
	return query.ExecStore(clusterStore{c: c}, statement)
}

// clusterStore adapts the cluster to query.Store for mutations arriving
// over the wire, threading the request's trace into the 2PC legs.
type clusterStore struct {
	c  *Cluster
	tr *obs.Trace
}

func (s clusterStore) Apply(statement string, puts []core.Put) (uint64, error) {
	return s.c.applyTraced(s.tr, statement, puts)
}

func (s clusterStore) Get(table, column string, pk []byte) ([]byte, error) {
	return s.c.Get(table, column, pk)
}

func (s clusterStore) Columns(table string) []string { return s.c.Columns(table) }

func (s clusterStore) History(table, column string, pk []byte) ([]cellstore.Cell, error) {
	return s.c.History(table, column, pk)
}

func (s clusterStore) RangePK(table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, error) {
	return s.c.rangePKTraced(s.tr, table, column, pkLo, pkHi)
}

func (s clusterStore) LookupEqual(table, column string, value []byte) ([]cellstore.Cell, error) {
	return s.c.lookupEqualTraced(s.tr, table, column, value)
}

// dispatchShard routes a request to one shard's engine. A traced
// request gets a child span labelled with the owning shard, so the
// engine's proof/ledger stages land on a per-shard span in the stitched
// timeline rather than on the cluster-level server span.
func (c *Cluster) dispatchShard(si int, req wire.Request) wire.Response {
	leg := req.Trace().ChildAt("shard.dispatch", shardName(si))
	req.SetTrace(leg)
	resp := wire.Dispatch(c.shards[si].eng, req)
	leg.Finish()
	return resp
}

// Compile-time interface check.
var _ wire.Handler = (*Cluster)(nil)
