package server

import (
	"fmt"
	"sync"
	"testing"

	"spitz/internal/core"
	"spitz/internal/wire"
)

func TestGroupServesRequests(t *testing.T) {
	eng := core.New(core.Options{})
	g := NewGroup(eng, 4, 32)
	defer g.Close()

	puts := make([]wire.Put, 100)
	for i := range puts {
		puts[i] = wire.Put{Table: "t", Column: "c", PK: []byte(fmt.Sprintf("pk%03d", i)),
			Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	if _, err := g.Submit(wire.Request{Op: wire.OpPut, Statement: "seed", Puts: puts}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := g.Submit(wire.Request{Op: wire.OpGet, Table: "t", Column: "c",
					PK: []byte(fmt.Sprintf("pk%03d", i%100))})
				if err != nil || !resp.Found {
					t.Errorf("get via group failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := int64(0)
	for _, n := range g.Processed() {
		total += n
	}
	if total != 401 { // 1 put + 400 gets
		t.Fatalf("processed = %d", total)
	}
}

func TestGroupMultipleNodesShareWork(t *testing.T) {
	eng := core.New(core.Options{})
	g := NewGroup(eng, 4, 64)
	defer g.Close()
	g.Submit(wire.Request{Op: wire.OpPut, Statement: "s",
		Puts: []wire.Put{{Table: "t", Column: "c", PK: []byte("k"), Value: []byte("v")}}})

	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Submit(wire.Request{Op: wire.OpGet, Table: "t", Column: "c", PK: []byte("k")})
		}()
	}
	wg.Wait()
	busy := 0
	for _, n := range g.Processed() {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 nodes did any work", busy)
	}
}

func TestGroupSubmitAfterClose(t *testing.T) {
	g := NewGroup(core.New(core.Options{}), 1, 4)
	g.Close()
	if _, err := g.Submit(wire.Request{Op: wire.OpDigest}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
