package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"spitz/internal/core"
	"spitz/internal/twopc"
	"spitz/internal/wire"
)

func TestGroupServesRequests(t *testing.T) {
	eng := core.New(core.Options{})
	g := NewGroup(eng, 4, 32)
	defer g.Close()

	puts := make([]wire.Put, 100)
	for i := range puts {
		puts[i] = wire.Put{Table: "t", Column: "c", PK: []byte(fmt.Sprintf("pk%03d", i)),
			Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	if _, err := g.Submit(wire.Request{Op: wire.OpPut, Statement: "seed", Puts: puts}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := g.Submit(wire.Request{Op: wire.OpGet, Table: "t", Column: "c",
					PK: []byte(fmt.Sprintf("pk%03d", i%100))})
				if err != nil || !resp.Found {
					t.Errorf("get via group failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := int64(0)
	for _, n := range g.Processed() {
		total += n
	}
	if total != 401 { // 1 put + 400 gets
		t.Fatalf("processed = %d", total)
	}
}

func TestGroupMultipleNodesShareWork(t *testing.T) {
	eng := core.New(core.Options{})
	g := NewGroup(eng, 4, 64)
	defer g.Close()
	g.Submit(wire.Request{Op: wire.OpPut, Statement: "s",
		Puts: []wire.Put{{Table: "t", Column: "c", PK: []byte("k"), Value: []byte("v")}}})

	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Submit(wire.Request{Op: wire.OpGet, Table: "t", Column: "c", PK: []byte("k")})
		}()
	}
	wg.Wait()
	busy := 0
	for _, n := range g.Processed() {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 nodes did any work", busy)
	}
}

func TestGroupSubmitAfterClose(t *testing.T) {
	g := NewGroup(core.New(core.Options{}), 1, 4)
	g.Close()
	if _, err := g.Submit(wire.Request{Op: wire.OpDigest}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

func TestClusterRouting(t *testing.T) {
	c := NewCluster(4)
	if c.Shards() != 4 {
		t.Fatalf("shards = %d", c.Shards())
	}
	// Writes land on the owning shard; reads route back to it.
	for i := 0; i < 40; i++ {
		pk := []byte(fmt.Sprintf("user%02d", i))
		_, _, err := c.Execute([]Op{{Table: "t", Column: "c", PK: pk,
			Value: []byte(fmt.Sprintf("val%02d", i)), Write: true}})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		pk := []byte(fmt.Sprintf("user%02d", i))
		v, err := c.Get("t", "c", pk)
		if err != nil || string(v) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("read %d: %q %v", i, v, err)
		}
	}
	// Keys spread across shards.
	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		seen[c.ShardFor([]byte(fmt.Sprintf("user%02d", i)))] = true
	}
	if len(seen) < 2 {
		t.Fatal("all keys routed to one shard")
	}
}

func TestClusterCrossShardTransaction(t *testing.T) {
	c := NewCluster(3)
	// Find two pks on different shards.
	var pkA, pkB []byte
	for i := 0; ; i++ {
		pk := []byte(fmt.Sprintf("acct%03d", i))
		if pkA == nil {
			pkA = pk
			continue
		}
		if c.ShardFor(pk) != c.ShardFor(pkA) {
			pkB = pk
			break
		}
	}
	enc := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return b
	}
	// Seed both accounts atomically across shards.
	if _, _, err := c.Execute([]Op{
		{Table: "bank", Column: "bal", PK: pkA, Value: enc(100), Write: true},
		{Table: "bank", Column: "bal", PK: pkB, Value: enc(100), Write: true},
	}); err != nil {
		t.Fatal(err)
	}
	// Transfer with read validation.
	reads, _, err := c.Execute([]Op{
		{Table: "bank", Column: "bal", PK: pkA},
		{Table: "bank", Column: "bal", PK: pkB},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := binary.BigEndian.Uint64(reads["bank/bal/"+string(pkA)])
	b := binary.BigEndian.Uint64(reads["bank/bal/"+string(pkB)])
	if _, _, err := c.Execute([]Op{
		{Table: "bank", Column: "bal", PK: pkA, Value: enc(a - 30), Write: true},
		{Table: "bank", Column: "bal", PK: pkB, Value: enc(b + 30), Write: true},
	}); err != nil {
		t.Fatal(err)
	}
	va, _ := c.Get("bank", "bal", pkA)
	vb, _ := c.Get("bank", "bal", pkB)
	if binary.BigEndian.Uint64(va) != 70 || binary.BigEndian.Uint64(vb) != 130 {
		t.Fatalf("balances = %d / %d", binary.BigEndian.Uint64(va), binary.BigEndian.Uint64(vb))
	}
	commits, _ := c.Stats()
	if commits != 3 {
		t.Fatalf("commits = %d", commits)
	}
}

func TestClusterConflictingTransactionsAbort(t *testing.T) {
	c := NewCluster(2)
	pk := []byte("hot-key")
	if _, _, err := c.Execute([]Op{{Table: "t", Column: "c", PK: pk, Value: []byte("v0"), Write: true}}); err != nil {
		t.Fatal(err)
	}
	// A transaction that validated a stale read version must abort: read
	// first, then write behind its back, then try to commit with the old
	// version.
	si := c.ShardFor(pk)
	ref := refKey("t", "c", pk)
	_, staleVer, _, _ := c.parts[si].ReadLatest(ref, ^uint64(0))
	if _, _, err := c.Execute([]Op{{Table: "t", Column: "c", PK: pk, Value: []byte("v1"), Write: true}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.coord.Execute([]twopc.Request{{Shard: shardName(si),
		Reads: map[string]uint64{string(ref): staleVer}}})
	if !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("stale distributed read committed: %v", err)
	}
}

func TestClusterShardsHaveIndependentLedgers(t *testing.T) {
	c := NewCluster(2)
	if _, _, err := c.Execute([]Op{{Table: "t", Column: "c", PK: []byte("k1"), Value: []byte("v"), Write: true}}); err != nil {
		t.Fatal(err)
	}
	si := c.ShardFor([]byte("k1"))
	other := (si + 1) % 2
	if c.Shard(si).Digest().Height == 0 {
		t.Fatal("owning shard ledger empty")
	}
	if c.Shard(other).Digest().Height != 0 {
		t.Fatal("non-owning shard ledger advanced")
	}
}
