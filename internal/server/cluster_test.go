package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"spitz/internal/core"
	"spitz/internal/twopc"
	"spitz/internal/txn"
	"spitz/internal/wal"
)

func memCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := Open(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// twoShardPKs returns two primary keys owned by different shards.
func twoShardPKs(c *Cluster) (pkA, pkB []byte) {
	pkA = []byte("acct000")
	for i := 1; ; i++ {
		pk := []byte(fmt.Sprintf("acct%03d", i))
		if c.ShardFor(pk) != c.ShardFor(pkA) {
			return pkA, pk
		}
	}
}

func enc64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func TestClusterRouting(t *testing.T) {
	c := memCluster(t, 4)
	if c.Shards() != 4 {
		t.Fatalf("shards = %d", c.Shards())
	}
	for i := 0; i < 40; i++ {
		pk := []byte(fmt.Sprintf("user%02d", i))
		if _, err := c.Apply("seed", []core.Put{{Table: "t", Column: "c", PK: pk,
			Value: []byte(fmt.Sprintf("val%02d", i))}}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		pk := []byte(fmt.Sprintf("user%02d", i))
		v, err := c.Get("t", "c", pk)
		if err != nil || string(v) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("read %d: %q %v", i, v, err)
		}
	}
	// Keys spread across shards, and only owning shards advanced.
	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		seen[c.ShardFor([]byte(fmt.Sprintf("user%02d", i)))] = true
	}
	if len(seen) < 2 {
		t.Fatal("all keys routed to one shard")
	}
}

func TestClusterCrossShardTransaction(t *testing.T) {
	c := memCluster(t, 3)
	pkA, pkB := twoShardPKs(c)
	// Seed both accounts atomically across shards.
	if _, err := c.Apply("seed", []core.Put{
		{Table: "bank", Column: "bal", PK: pkA, Value: enc64(100)},
		{Table: "bank", Column: "bal", PK: pkB, Value: enc64(100)},
	}); err != nil {
		t.Fatal(err)
	}
	// Transfer with read validation through the transaction API.
	tx := c.Begin()
	av, ok, err := tx.Get("bank", "bal", pkA)
	if err != nil || !ok {
		t.Fatalf("read a: %v %v", ok, err)
	}
	bv, ok, err := tx.Get("bank", "bal", pkB)
	if err != nil || !ok {
		t.Fatalf("read b: %v %v", ok, err)
	}
	tx.Put("bank", "bal", pkA, enc64(binary.BigEndian.Uint64(av)-30))
	tx.Put("bank", "bal", pkB, enc64(binary.BigEndian.Uint64(bv)+30))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	va, _ := c.Get("bank", "bal", pkA)
	vb, _ := c.Get("bank", "bal", pkB)
	if binary.BigEndian.Uint64(va) != 70 || binary.BigEndian.Uint64(vb) != 130 {
		t.Fatalf("balances = %d / %d", binary.BigEndian.Uint64(va), binary.BigEndian.Uint64(vb))
	}
	st := c.Stats()
	if st.Commits != 2 {
		t.Fatalf("commits = %d", st.Commits)
	}
}

func TestClusterStaleReadAborts(t *testing.T) {
	c := memCluster(t, 2)
	pk := []byte("hot-key")
	if _, err := c.Apply("seed", []core.Put{{Table: "t", Column: "c", PK: pk, Value: []byte("v0")}}); err != nil {
		t.Fatal(err)
	}
	// Read inside a transaction, write behind its back, then commit: the
	// stale read must abort the transaction on its shard.
	tx := c.Begin()
	if _, _, err := tx.Get("t", "c", pk); err != nil {
		t.Fatal(err)
	}
	tx.Put("t", "c2", pk, []byte("out"))
	if _, err := c.Apply("intruder", []core.Put{{Table: "t", Column: "c", PK: pk, Value: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, twopc.ErrAborted) {
		t.Fatalf("stale distributed read committed: %v", err)
	}
}

func TestClusterShardsHaveIndependentLedgers(t *testing.T) {
	c := memCluster(t, 2)
	if _, err := c.Apply("w", []core.Put{{Table: "t", Column: "c", PK: []byte("k1"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	si := c.ShardFor([]byte("k1"))
	other := (si + 1) % 2
	if c.Engine(si).Digest().Height == 0 {
		t.Fatal("owning shard ledger empty")
	}
	if c.Engine(other).Digest().Height != 0 {
		t.Fatal("non-owning shard ledger advanced")
	}
	// The cluster digest reflects both, bound under the combined root.
	d := c.Digest()
	if len(d.Shards) != 2 || d.Shards[si].Height == 0 {
		t.Fatalf("cluster digest %+v", d)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterRequestsDeterministic covers the 2PC request-build order: a
// transaction touching many shards must emit its per-shard requests
// sorted by shard index, never in map iteration order.
func TestClusterRequestsDeterministic(t *testing.T) {
	c := memCluster(t, 8)
	for trial := 0; trial < 20; trial++ {
		tx := c.Begin()
		for i := 0; i < 64; i++ {
			tx.Put("t", "c", []byte(fmt.Sprintf("key-%d-%d", trial, i)), []byte("v"))
		}
		reqs := tx.requests("order-check")
		if len(reqs) < 2 {
			t.Fatalf("trial %d: want multi-shard txn, got %d requests", trial, len(reqs))
		}
		for i := 1; i < len(reqs); i++ {
			var prev, cur int
			fmt.Sscanf(reqs[i-1].Shard, "shard-%d", &prev)
			fmt.Sscanf(reqs[i].Shard, "shard-%d", &cur)
			if cur <= prev {
				t.Fatalf("trial %d: requests out of order: %s before %s", trial, reqs[i-1].Shard, reqs[i].Shard)
			}
		}
		tx.Abort()
	}
}

func TestClusterScatterGather(t *testing.T) {
	c, err := Open(Options{Shards: 4, MaintainInverted: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var puts []core.Put
	for i := 0; i < 60; i++ {
		val := []byte("even")
		if i%2 == 1 {
			val = []byte("odd")
		}
		puts = append(puts, core.Put{Table: "t", Column: "par", PK: []byte(fmt.Sprintf("pk%03d", i)), Value: val})
	}
	if _, err := c.Apply("seed", puts); err != nil {
		t.Fatal(err)
	}

	cells, err := c.RangePK("t", "par", []byte("pk010"), []byte("pk020"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("range returned %d cells, want 10", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if string(cells[i-1].PK) >= string(cells[i].PK) {
			t.Fatalf("merged range not ordered: %q then %q", cells[i-1].PK, cells[i].PK)
		}
	}

	odds, err := c.LookupEqual("t", "par", []byte("odd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(odds) != 30 {
		t.Fatalf("lookup returned %d cells, want 30", len(odds))
	}

	// History merges across shards (only the owning shard contributes).
	pk := []byte("pk007")
	if _, err := c.Apply("update", []core.Put{{Table: "t", Column: "par", PK: pk, Value: []byte("flip")}}); err != nil {
		t.Fatal(err)
	}
	hist, err := c.History("t", "par", pk)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || string(hist[0].Value) != "flip" {
		t.Fatalf("history = %+v", hist)
	}
}

func TestClusterVerifiedReadAndConsistency(t *testing.T) {
	c := memCluster(t, 3)
	if _, err := c.Apply("w1", []core.Put{{Table: "t", Column: "c", PK: []byte("alpha"), Value: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	old := c.Digest()
	si, res, err := c.GetVerified("t", "c", []byte("alpha"))
	if err != nil || !res.Found {
		t.Fatalf("verified read: %v %v", res.Found, err)
	}
	if si != c.ShardFor([]byte("alpha")) {
		t.Fatalf("verified read attributed to shard %d, owner is %d", si, c.ShardFor([]byte("alpha")))
	}
	// The proof verifies against the owning shard's digest entry — and
	// against no other shard's.
	if err := res.Proof.Verify(old.Shards[si]); err != nil {
		t.Fatalf("proof fails against owning shard digest: %v", err)
	}
	for i := range old.Shards {
		if i != si {
			if err := res.Proof.Verify(old.Shards[i]); err == nil && old.Shards[i].Height > 0 {
				t.Fatalf("proof verified against wrong shard %d", i)
			}
		}
	}

	// Grow the ledger; consistency proofs connect old entries to new.
	if _, err := c.Apply("w2", []core.Put{{Table: "t", Column: "c", PK: []byte("beta"), Value: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	next, proofs, err := c.ConsistencyUpdate(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 3 {
		t.Fatalf("proofs = %d", len(proofs))
	}
	for i := range proofs {
		if old.Shards[i].Height == 0 {
			continue // trust-on-first-use entries carry empty proofs
		}
		if err := proofs[i].Verify(old.Shards[i].Root, next.Shards[i].Root); err != nil {
			t.Fatalf("shard %d consistency: %v", i, err)
		}
	}
}

// TestClusterDurableRecovery is the shard-level durability test: a
// durable cluster killed without shutdown recovers every shard to its
// pre-crash digest.
func TestClusterDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 3, Dir: dir, Sync: wal.SyncAlways, CheckpointInterval: -1}
	c, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Apply(fmt.Sprintf("w%d", i), []core.Put{
			{Table: "t", Column: "c", PK: []byte(fmt.Sprintf("pk%03d", i)), Value: []byte(fmt.Sprintf("v%03d", i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One cross-shard transaction for good measure.
	pkA, pkB := twoShardPKs(c)
	tx := c.Begin()
	tx.Put("x", "c", pkA, []byte("a"))
	tx.Put("x", "c", pkB, []byte("b"))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := c.Digest()
	// Crash: abandon the handles without Close.

	c2, err := Open(Options{Dir: dir, Sync: wal.SyncAlways, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer c2.Close()
	if c2.Shards() != 3 {
		t.Fatalf("recovered %d shards, want 3 (manifest lost?)", c2.Shards())
	}
	got := c2.Digest()
	for i := range want.Shards {
		if got.Shards[i] != want.Shards[i] {
			t.Fatalf("shard %d digest %+v, want pre-crash %+v", i, got.Shards[i], want.Shards[i])
		}
	}
	if got.Root != want.Root {
		t.Fatalf("combined root changed across recovery")
	}
	for i := 0; i < 30; i++ {
		v, err := c2.Get("t", "c", []byte(fmt.Sprintf("pk%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("key %d lost: %q %v", i, v, err)
		}
	}
	// Writes continue above the recovered versions.
	if _, err := c2.Apply("post", []core.Put{{Table: "t", Column: "c", PK: []byte("new"), Value: []byte("nv")}}); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
}

func TestClusterShardCountMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Shards: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := Open(Options{Shards: 4, Dir: dir}); err == nil {
		t.Fatal("reopening a 2-shard cluster as 4 shards must fail")
	}
}

// TestClusterConcurrentCrossShardStress drives contended cross-shard
// transfers under the race detector: money is conserved and every
// shard's ledger stays consistent.
func TestClusterConcurrentCrossShardStress(t *testing.T) {
	c := memCluster(t, 4)
	const accounts = 8
	var seed []core.Put
	for i := 0; i < accounts; i++ {
		seed = append(seed, core.Put{Table: "bank", Column: "bal",
			PK: []byte(fmt.Sprintf("acct%d", i)), Value: enc64(1000)})
	}
	if _, err := c.Apply("seed", seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				src := []byte(fmt.Sprintf("acct%d", (g+i)%accounts))
				dst := []byte(fmt.Sprintf("acct%d", (g+i+3)%accounts))
				if string(src) == string(dst) {
					continue
				}
				tx := c.Begin()
				sv, ok, err := tx.Get("bank", "bal", src)
				if err != nil || !ok {
					t.Errorf("read src: %v %v", ok, err)
					return
				}
				dv, ok, err := tx.Get("bank", "bal", dst)
				if err != nil || !ok {
					t.Errorf("read dst: %v %v", ok, err)
					return
				}
				s, d := binary.BigEndian.Uint64(sv), binary.BigEndian.Uint64(dv)
				if s == 0 {
					tx.Abort()
					continue
				}
				tx.Put("bank", "bal", src, enc64(s-1))
				tx.Put("bank", "bal", dst, enc64(d+1))
				if _, err := tx.Commit(); err != nil && !errors.Is(err, twopc.ErrAborted) && !errors.Is(err, txn.ErrConflict) {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		v, err := c.Get("bank", "bal", []byte(fmt.Sprintf("acct%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += binary.BigEndian.Uint64(v)
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*1000)
	}
	st := c.Stats()
	t.Logf("stress: %d commits, %d aborts", st.Commits, st.Aborts)
	if st.Commits == 0 {
		t.Fatal("no transfer committed")
	}
}
