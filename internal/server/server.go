// Package server implements Spitz's control layer (Section 5, Figure 5):
// "multiple processor nodes that accept and process requests from a global
// message queue. Each node has three main components: a request handler,
// an auditor, and a transaction manager."
//
// A Group runs N processor nodes over a shared storage layer; a Cluster
// shards data across processor nodes, each owning its own engine, with
// two-phase commit for cross-shard transactions (Section 5.2).
package server

import (
	"fmt"
	"hash/fnv"
	"sync"

	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/mq"
	"spitz/internal/twopc"
	"spitz/internal/txn"
	"spitz/internal/txn/hlc"
	"spitz/internal/wire"
)

// Task is one request travelling through the global message queue.
type Task struct {
	Req   wire.Request
	Reply chan wire.Response
}

// Group is a set of processor nodes consuming one global queue over a
// shared storage layer.
type Group struct {
	queue *mq.Queue[Task]
	eng   *core.Engine
	wg    sync.WaitGroup

	mu        sync.Mutex
	processed []int64 // per node
}

// NewGroup starts n processor nodes over eng.
func NewGroup(eng *core.Engine, n, queueDepth int) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{queue: mq.New[Task](queueDepth), eng: eng, processed: make([]int64, n)}
	for i := 0; i < n; i++ {
		g.wg.Add(1)
		go g.runNode(i)
	}
	return g
}

// runNode is one processor node's loop: request handler consumes from the
// queue, the engine's auditor/TM execute, the response returns to the
// caller.
func (g *Group) runNode(id int) {
	defer g.wg.Done()
	for {
		task, ok := g.queue.Consume()
		if !ok {
			return
		}
		resp := wire.Dispatch(g.eng, task.Req)
		g.mu.Lock()
		g.processed[id]++
		g.mu.Unlock()
		task.Reply <- resp
	}
}

// Submit publishes a request to the global queue and waits for its
// response.
func (g *Group) Submit(req wire.Request) (wire.Response, error) {
	reply := make(chan wire.Response, 1)
	if err := g.queue.Publish(Task{Req: req, Reply: reply}); err != nil {
		return wire.Response{}, err
	}
	return <-reply, nil
}

// Close drains the queue and stops the nodes.
func (g *Group) Close() {
	g.queue.Close()
	g.wg.Wait()
}

// Processed reports how many requests each node handled.
func (g *Group) Processed() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(g.processed))
	copy(out, g.processed)
	return out
}

// ---------------------------------------------------------------------------
// Sharded cluster

// Cluster shards the key space across processor nodes, each with its own
// engine (and therefore its own ledger). Cross-shard transactions commit
// with 2PC; timestamps come from per-node hybrid logical clocks so no
// global oracle bottleneck exists (Section 5.2).
type Cluster struct {
	shards []*core.Engine
	parts  []*twopc.ShardParticipant
	coord  *twopc.Coordinator
	clock  *hlc.Clock
}

// NewCluster creates a cluster of n shards.
func NewCluster(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	clock := hlc.New()
	c := &Cluster{coord: twopc.NewCoordinator(txn.ClockSource{Clock: clock}), clock: clock}
	for i := 0; i < n; i++ {
		eng := core.New(core.Options{Timestamps: txn.ClockSource{Clock: clock}})
		part := twopc.NewShardParticipant(eng.TxnStore())
		c.shards = append(c.shards, eng)
		c.parts = append(c.parts, part)
		c.coord.Register(shardName(i), part)
	}
	return c
}

func shardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// ShardFor routes a primary key to its shard index.
func (c *Cluster) ShardFor(pk []byte) int {
	h := fnv.New32a()
	h.Write(pk)
	return int(h.Sum32()) % len(c.shards)
}

// Shard returns the engine owning shard i (for shard-local queries).
func (c *Cluster) Shard(i int) *core.Engine { return c.shards[i] }

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.shards) }

// Get reads a cell from its owning shard.
func (c *Cluster) Get(table, column string, pk []byte) ([]byte, error) {
	return c.shards[c.ShardFor(pk)].Get(table, column, pk)
}

// Op is one read or write of a cross-shard transaction.
type Op struct {
	Table  string
	Column string
	PK     []byte
	Value  []byte // nil with Delete=false means a read
	Write  bool
	Delete bool
}

// Execute runs a distributed transaction: reads execute first (collecting
// the versions to validate), then all shards prepare and commit via 2PC.
// It returns the read results keyed by "table/column/pk" and the commit
// version.
func (c *Cluster) Execute(ops []Op) (map[string][]byte, uint64, error) {
	reads := make(map[string][]byte)
	type shardReq struct {
		reads  map[string]uint64
		writes []txn.Write
	}
	reqs := make(map[int]*shardReq)
	shardReqOf := func(i int) *shardReq {
		r, ok := reqs[i]
		if !ok {
			r = &shardReq{reads: make(map[string]uint64)}
			reqs[i] = r
		}
		return r
	}
	for _, op := range ops {
		si := c.ShardFor(op.PK)
		ref := refKey(op.Table, op.Column, op.PK)
		r := shardReqOf(si)
		if op.Write || op.Delete {
			r.writes = append(r.writes, txn.Write{Key: ref, Value: op.Value, Delete: op.Delete})
			continue
		}
		val, ver, found, err := c.parts[si].ReadLatest(ref, ^uint64(0))
		if err != nil {
			return nil, 0, err
		}
		r.reads[string(ref)] = ver
		if found {
			reads[opKey(op)] = val
		}
	}
	var request []twopc.Request
	for si, r := range reqs {
		request = append(request, twopc.Request{Shard: shardName(si), Reads: r.reads, Writes: r.writes})
	}
	version, err := c.coord.Execute(request)
	if err != nil {
		return nil, 0, err
	}
	return reads, version, nil
}

// Stats returns the coordinator's commit/abort counters.
func (c *Cluster) Stats() (commits, aborts int64) { return c.coord.Stats() }

func refKey(table, column string, pk []byte) []byte {
	return cellstore.CellPrefix(table, column, pk)
}

func opKey(op Op) string {
	return op.Table + "/" + op.Column + "/" + string(op.PK)
}
