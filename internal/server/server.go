// Package server implements Spitz's control layer (Section 5, Figure 5):
// "multiple processor nodes that accept and process requests from a global
// message queue. Each node has three main components: a request handler,
// an auditor, and a transaction manager."
//
// A Group runs N processor nodes over a shared storage layer; a Cluster
// (cluster.go) shards data across processor nodes, each owning its own
// durable engine and ledger, with two-phase commit for cross-shard
// transactions (Section 5.2).
package server

import (
	"sync"
	"sync/atomic"

	"spitz/internal/core"
	"spitz/internal/mq"
	"spitz/internal/wire"
)

// Task is one request travelling through the global message queue.
type Task struct {
	Req   wire.Request
	Reply chan wire.Response
}

// Group is a set of processor nodes consuming one global queue over a
// shared storage layer.
type Group struct {
	queue *mq.Queue[Task]
	eng   *core.Engine
	wg    sync.WaitGroup

	// processed counts requests handled per node. Atomics, not a mutex:
	// the counters sit on every node's hot loop, and serializing all nodes
	// on one lock just to bump bookkeeping defeats the point of running N
	// of them.
	processed []atomic.Int64
}

// NewGroup starts n processor nodes over eng.
func NewGroup(eng *core.Engine, n, queueDepth int) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{queue: mq.New[Task](queueDepth), eng: eng, processed: make([]atomic.Int64, n)}
	for i := 0; i < n; i++ {
		g.wg.Add(1)
		go g.runNode(i)
	}
	return g
}

// runNode is one processor node's loop: request handler consumes from the
// queue, the engine's auditor/TM execute, the response returns to the
// caller.
func (g *Group) runNode(id int) {
	defer g.wg.Done()
	for {
		task, ok := g.queue.Consume()
		if !ok {
			return
		}
		resp := wire.Dispatch(g.eng, task.Req)
		g.processed[id].Add(1)
		task.Reply <- resp
	}
}

// Submit publishes a request to the global queue and waits for its
// response.
func (g *Group) Submit(req wire.Request) (wire.Response, error) {
	reply := make(chan wire.Response, 1)
	if err := g.queue.Publish(Task{Req: req, Reply: reply}); err != nil {
		return wire.Response{}, err
	}
	return <-reply, nil
}

// Close drains the queue and stops the nodes.
func (g *Group) Close() {
	g.queue.Close()
	g.wg.Wait()
}

// Processed reports how many requests each node handled.
func (g *Group) Processed() []int64 {
	out := make([]int64, len(g.processed))
	for i := range g.processed {
		out[i] = g.processed[i].Load()
	}
	return out
}
