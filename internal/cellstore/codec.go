package cellstore

// Compact binary encoding of Cell for the wire protocol's binary
// framing (unverified reads, history, fan-out scans all ship []Cell).

import "spitz/internal/binenc"

// AppendCell appends c's binary encoding.
func AppendCell(dst []byte, c Cell) []byte {
	dst = binenc.AppendString(dst, c.Table)
	dst = binenc.AppendString(dst, c.Column)
	dst = binenc.AppendBytes(dst, c.PK)
	dst = binenc.AppendUvarint(dst, c.Version)
	dst = binenc.AppendBytes(dst, c.Value)
	return binenc.AppendBool(dst, c.Tombstone)
}

// ReadCell decodes a cell.
func ReadCell(src []byte) (Cell, []byte, error) {
	var c Cell
	var err error
	if c.Table, src, err = binenc.ReadString(src); err != nil {
		return c, nil, err
	}
	if c.Column, src, err = binenc.ReadString(src); err != nil {
		return c, nil, err
	}
	if c.PK, src, err = binenc.ReadBytes(src); err != nil {
		return c, nil, err
	}
	if c.Version, src, err = binenc.ReadUvarint(src); err != nil {
		return c, nil, err
	}
	if c.Value, src, err = binenc.ReadBytes(src); err != nil {
		return c, nil, err
	}
	c.Tombstone, src, err = binenc.ReadBool(src)
	return c, src, err
}

// AppendCells appends a nil-preserving cell list.
func AppendCells(dst []byte, cs []Cell) []byte {
	if cs == nil {
		return append(dst, 0)
	}
	dst = binenc.AppendUvarint(dst, uint64(len(cs))+1)
	for i := range cs {
		dst = AppendCell(dst, cs[i])
	}
	return dst
}

// ReadCells decodes a cell list.
func ReadCells(src []byte) ([]Cell, []byte, error) {
	n, rest, err := binenc.ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	cnt, err := binenc.Count(n-1, rest, 6)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Cell, cnt)
	for i := range out {
		if out[i], rest, err = ReadCell(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}
