package cellstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"spitz/internal/cas"
	"spitz/internal/postree"
)

func emptyStore() Store {
	return Store{Tree: postree.Empty(cas.NewMemory())}
}

func mustApply(t *testing.T, s Store, cells []Cell) (Store, []Demoted) {
	t.Helper()
	next, demoted, err := s.Apply(cells)
	if err != nil {
		t.Fatal(err)
	}
	return next, demoted
}

func TestKeyEncodeDecodeRoundTrip(t *testing.T) {
	k := Key{Table: "accounts", Column: "balance", PK: []byte("user-42"), Version: 7,
		ValueHash: ValueHash(7, []byte("100"), false)}
	got, err := DecodeKey(EncodeKey(k))
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != k.Table || got.Column != k.Column || !bytes.Equal(got.PK, k.PK) ||
		got.Version != k.Version || got.ValueHash != k.ValueHash {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, k)
	}
}

func TestKeyEncodingHandlesZeroBytes(t *testing.T) {
	k := Key{Table: "t\x00a", Column: "c\x00\x00", PK: []byte{0x00, 0xFF, 0x00}, Version: 1}
	got, err := DecodeKey(EncodeKey(k))
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != k.Table || got.Column != k.Column || !bytes.Equal(got.PK, k.PK) {
		t.Fatal("zero-byte segments corrupted")
	}
}

func TestRefOrderingMatchesTupleOrder(t *testing.T) {
	a := CellPrefix("t", "c", []byte("a"))
	b := CellPrefix("t", "c", []byte("b"))
	c := CellPrefix("t", "d", []byte("a"))
	if !(bytes.Compare(a, b) < 0) {
		t.Error("pk order broken")
	}
	if !(bytes.Compare(b, c) < 0) {
		t.Error("column order broken")
	}
	// A pk that is a prefix of another must still sort before it.
	p1 := CellPrefix("t", "c", []byte("ab"))
	p2 := CellPrefix("t", "c", []byte("ab0"))
	if !(bytes.Compare(p1, p2) < 0) {
		t.Error("prefix pk order broken")
	}
}

func TestDecodeRefRoundTrip(t *testing.T) {
	ref := CellPrefix("tbl", "col", []byte("pk\x00x"))
	table, column, pk, err := DecodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	if table != "tbl" || column != "col" || !bytes.Equal(pk, []byte("pk\x00x")) {
		t.Fatal("ref round trip mismatch")
	}
	if _, _, _, err := DecodeRef(ref[:len(ref)-1]); err == nil {
		t.Error("truncated ref accepted")
	}
	if _, _, _, err := DecodeRef(append(ref, 0x07)); err == nil {
		t.Error("ref with trailing bytes accepted")
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	if _, err := DecodeKey([]byte{0x01, 0x02}); err == nil {
		t.Error("unterminated key accepted")
	}
	if _, err := DecodeKey(nil); err == nil {
		t.Error("empty key accepted")
	}
	k := EncodeKey(Key{Table: "t", Column: "c", PK: []byte("p"), Version: 1})
	if _, err := DecodeKey(k[:len(k)-3]); err == nil {
		t.Error("truncated key accepted")
	}
}

func TestVersionCodecRoundTrip(t *testing.T) {
	ver, v, tomb, err := DecodeVersion(EncodeVersion(99, []byte("hello"), false))
	if err != nil || tomb || ver != 99 || string(v) != "hello" {
		t.Fatal("live version round trip failed")
	}
	ver, v, tomb, err = DecodeVersion(EncodeVersion(7, nil, true))
	if err != nil || !tomb || ver != 7 || len(v) != 0 {
		t.Fatal("tombstone round trip failed")
	}
	if _, _, _, err := DecodeVersion(nil); err == nil {
		t.Error("empty version accepted")
	}
	if _, _, _, err := DecodeVersion([]byte{0x80, 1}); err == nil {
		t.Error("bad flags accepted")
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := PrefixEnd([]byte{0x01, 0x02}); !bytes.Equal(got, []byte{0x01, 0x03}) {
		t.Fatalf("PrefixEnd = %x", got)
	}
	if got := PrefixEnd([]byte{0x01, 0xFF}); !bytes.Equal(got, []byte{0x02}) {
		t.Fatalf("PrefixEnd carry = %x", got)
	}
	if got := PrefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("PrefixEnd all-FF = %x, want nil", got)
	}
}

func TestApplyAndGetHead(t *testing.T) {
	s := emptyStore()
	s, demoted := mustApply(t, s, []Cell{
		{Table: "t", Column: "c", PK: []byte("k1"), Version: 1, Value: []byte("v1")},
		{Table: "t", Column: "c", PK: []byte("k2"), Version: 1, Value: []byte("w1")},
	})
	if len(demoted) != 0 {
		t.Fatalf("fresh inserts demoted %d versions", len(demoted))
	}
	c, ok, err := s.GetHead("t", "c", []byte("k1"))
	if err != nil || !ok || string(c.Value) != "v1" || c.Version != 1 {
		t.Fatalf("GetHead = %+v %v %v", c, ok, err)
	}
	if _, ok, _ := s.GetHead("t", "c", []byte("k3")); ok {
		t.Fatal("absent cell found")
	}
}

func TestApplyDemotesReplacedHead(t *testing.T) {
	s := emptyStore()
	s, _ = mustApply(t, s, []Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("old")}})
	s2, demoted := mustApply(t, s, []Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 5, Value: []byte("new")}})
	if len(demoted) != 1 || demoted[0].Version != 1 {
		t.Fatalf("demoted = %+v", demoted)
	}
	// The demoted object is loadable and carries the old version.
	c, err := LoadVersion(s.Tree.Store(), "t", "c", []byte("k"), demoted[0].Object)
	if err != nil || c.Version != 1 || string(c.Value) != "old" {
		t.Fatalf("LoadVersion = %+v %v", c, err)
	}
	// New head visible in the new snapshot; old snapshot unchanged.
	c, _, _ = s2.GetHead("t", "c", []byte("k"))
	if string(c.Value) != "new" {
		t.Fatal("new head wrong")
	}
	c, _, _ = s.GetHead("t", "c", []byte("k"))
	if string(c.Value) != "old" {
		t.Fatal("old snapshot mutated")
	}
}

func TestApplyMultipleVersionsSameBatch(t *testing.T) {
	s := emptyStore()
	s, demoted := mustApply(t, s, []Cell{
		{Table: "t", Column: "c", PK: []byte("k"), Version: 3, Value: []byte("v3")},
		{Table: "t", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("v1")},
		{Table: "t", Column: "c", PK: []byte("k"), Version: 2, Value: []byte("v2")},
	})
	c, ok, _ := s.GetHead("t", "c", []byte("k"))
	if !ok || c.Version != 3 || string(c.Value) != "v3" {
		t.Fatalf("head = %+v", c)
	}
	if len(demoted) != 2 {
		t.Fatalf("demoted %d, want 2", len(demoted))
	}
	versions := map[uint64]bool{}
	for _, d := range demoted {
		versions[d.Version] = true
	}
	if !versions[1] || !versions[2] {
		t.Fatalf("demoted versions wrong: %+v", demoted)
	}
}

func TestGetLatestRespectsAsOf(t *testing.T) {
	s := emptyStore()
	s, _ = mustApply(t, s, []Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 5, Value: []byte("v")}})
	if _, ok, _ := s.GetLatest("t", "c", []byte("k"), 4); ok {
		t.Fatal("head newer than asOf returned")
	}
	c, ok, _ := s.GetLatest("t", "c", []byte("k"), 5)
	if !ok || string(c.Value) != "v" {
		t.Fatal("head at asOf missing")
	}
}

func TestTombstone(t *testing.T) {
	s := emptyStore()
	s, _ = mustApply(t, s, []Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("v")}})
	s, demoted := mustApply(t, s, []Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 2, Tombstone: true}})
	if len(demoted) != 1 {
		t.Fatal("delete did not demote the old head")
	}
	c, ok, err := s.GetHead("t", "c", []byte("k"))
	if err != nil || !ok || !c.Tombstone {
		t.Fatal("tombstone head missing")
	}
}

func TestRangePK(t *testing.T) {
	s := emptyStore()
	var cells []Cell
	for i := 0; i < 100; i++ {
		cells = append(cells, Cell{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("pk%03d", i)), Version: 3,
			Value: []byte(fmt.Sprintf("val%d", i))})
	}
	s, _ = mustApply(t, s, cells)
	s, _ = mustApply(t, s, []Cell{
		{Table: "t", Column: "c", PK: []byte("pk010"), Version: 4, Tombstone: true},
		{Table: "t", Column: "c", PK: []byte("pk200"), Version: 9, Value: []byte("future")},
	})

	got, err := s.RangePK("t", "c", []byte("pk000"), []byte("pk020"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 19 { // 20 minus the tombstoned pk010
		t.Fatalf("range returned %d rows, want 19", len(got))
	}
	for _, c := range got {
		if string(c.PK) == "pk010" {
			t.Fatal("tombstoned row present")
		}
	}
	// A head newer than asOf is skipped.
	got, _ = s.RangePK("t", "c", []byte("pk200"), nil, 5)
	if len(got) != 0 {
		t.Fatal("future row visible")
	}
	got, _ = s.RangePK("t", "c", []byte("pk200"), nil, 9)
	if len(got) != 1 || string(got[0].Value) != "future" {
		t.Fatal("future row missing at its version")
	}
}

func TestProveGetHead(t *testing.T) {
	s := emptyStore()
	var cells []Cell
	for i := 0; i < 500; i++ {
		cells = append(cells, Cell{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("pk%04d", i)), Version: 2, Value: []byte(fmt.Sprintf("v%d", i))})
	}
	s, _ = mustApply(t, s, cells)
	root := s.Tree.Root()

	cell, ok, p, err := s.ProveGetHead("t", "c", []byte("pk0123"))
	if err != nil || !ok {
		t.Fatalf("ProveGetHead: %v %v", ok, err)
	}
	if string(cell.Value) != "v123" || cell.Version != 2 {
		t.Fatalf("cell = %+v", cell)
	}
	if err := p.Verify(root); err != nil {
		t.Fatalf("proof: %v", err)
	}

	// Absence.
	_, ok, p, err = s.ProveGetHead("t", "c", []byte("nope"))
	if err != nil || ok {
		t.Fatal("absent cell misbehaved")
	}
	if err := p.Verify(root); err != nil {
		t.Fatalf("absence proof: %v", err)
	}
}

func TestProveRangePK(t *testing.T) {
	s := emptyStore()
	var cells []Cell
	for i := 0; i < 200; i++ {
		cells = append(cells, Cell{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("pk%04d", i)), Version: 1,
			Value: []byte(fmt.Sprintf("val-%04d", i))})
	}
	s, _ = mustApply(t, s, cells)
	got, proof, err := s.ProveRangePK("t", "c", []byte("pk0050"), []byte("pk0060"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range = %d rows", len(got))
	}
	if err := proof.Verify(s.Tree.Root()); err != nil {
		t.Fatalf("range proof: %v", err)
	}
	decoded, err := DecodeEntries(proof.Entries)
	if err != nil || len(decoded) != 10 {
		t.Fatal("entry decoding failed")
	}
}

func TestMultiTableIsolation(t *testing.T) {
	s := emptyStore()
	s, _ = mustApply(t, s, []Cell{
		{Table: "a", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("in-a")},
		{Table: "b", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("in-b")},
		{Table: "a", Column: "d", PK: []byte("k"), Version: 1, Value: []byte("in-a-d")},
	})
	c, ok, _ := s.GetHead("a", "c", []byte("k"))
	if !ok || string(c.Value) != "in-a" {
		t.Fatal("table a read wrong")
	}
	c, ok, _ = s.GetHead("b", "c", []byte("k"))
	if !ok || string(c.Value) != "in-b" {
		t.Fatal("table b read wrong")
	}
	rows, _ := s.RangePK("a", "c", nil, nil, 5)
	if len(rows) != 1 {
		t.Fatalf("table a scan saw %d rows", len(rows))
	}
}

// Property: ref encoding is order preserving w.r.t. pk order.
func TestQuickRefOrderPreserving(t *testing.T) {
	f := func(pk1, pk2 []byte) bool {
		k1 := CellPrefix("t", "c", pk1)
		k2 := CellPrefix("t", "c", pk2)
		cmp := bytes.Compare(pk1, pk2)
		if cmp == 0 {
			return bytes.Equal(k1, k2)
		}
		return (cmp < 0) == (bytes.Compare(k1, k2) < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decode(encode(k)) == k for arbitrary universal keys.
func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(table, column string, pk []byte, version uint64, vh [32]byte) bool {
		k := Key{Table: table, Column: column, PK: pk, Version: version, ValueHash: vh}
		got, err := DecodeKey(EncodeKey(k))
		if err != nil {
			return false
		}
		return got.Table == k.Table && got.Column == k.Column &&
			bytes.Equal(got.PK, k.PK) && got.Version == k.Version && got.ValueHash == k.ValueHash
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: version codec round trips for arbitrary payloads.
func TestQuickVersionRoundTrip(t *testing.T) {
	f := func(version uint64, value []byte, tomb bool) bool {
		v, val, tb, err := DecodeVersion(EncodeVersion(version, value, tomb))
		return err == nil && v == version && bytes.Equal(val, value) && tb == tomb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestApplySameVersionDuplicateLastWins(t *testing.T) {
	s := emptyStore()
	s, demoted := mustApply(t, s, []Cell{
		{Table: "t", Column: "c", PK: []byte("k"), Version: 5, Value: []byte("first")},
		{Table: "t", Column: "c", PK: []byte("k"), Version: 5, Value: []byte("second")},
	})
	c, ok, _ := s.GetHead("t", "c", []byte("k"))
	if !ok || string(c.Value) != "second" {
		t.Fatalf("head = %q, want the batch's last write", c.Value)
	}
	if len(demoted) != 1 || string(mustLoad(t, s, demoted[0]).Value) != "first" {
		t.Fatal("first write not demoted")
	}
}

func mustLoad(t *testing.T, s Store, d Demoted) Cell {
	t.Helper()
	table, column, pk, err := DecodeRef(d.Ref)
	if err != nil {
		t.Fatal(err)
	}
	c, err := LoadVersion(s.Tree.Store(), table, column, pk, d.Object)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
