// Package cellstore implements Spitz's virtual cell store (Section 5).
//
// Instead of a row or column store, Spitz "maps each cell to a universal
// key consisting of the column id, primary key, timestamp, and the hash of
// its value". Following ForkBase's multi-version layout, the store keeps
// one authenticated tree entry per cell — keyed by (table, column, primary
// key) — whose value is the cell's *head* (newest) version; superseded
// versions are demoted into out-of-band, content-addressed chain objects.
// The universal key is thereby realized physically: a version object's
// address is the hash of its content, which includes its timestamp and
// value, and the logical universal key (EncodeKey) names it uniquely.
//
// This layout is what keeps Spitz's write path comparable to the plain
// immutable KVS (Figure 6(b)): an update rewrites one compact head entry
// and appends one small chain object, rather than growing the
// authenticated tree by one entry per version. Every historical version
// remains committed by the ledger: the block that contained it has it as
// the head under that block's tree root.
package cellstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spitz/internal/cas"
	"spitz/internal/hashutil"
	"spitz/internal/postree"
)

// Cell is one value of one column of one row at one version.
type Cell struct {
	Table     string
	Column    string
	PK        []byte
	Version   uint64
	Value     []byte
	Tombstone bool // a deletion marker: the cell ceased to exist here
}

// Key is the logical universal key of a cell version.
type Key struct {
	Table     string
	Column    string
	PK        []byte
	Version   uint64
	ValueHash hashutil.Digest
}

// ---------------------------------------------------------------------------
// Order-preserving tuple encoding
//
// Each variable-length segment escapes 0x00 as {0x00,0xFF} and terminates
// with {0x00,0x01}; the terminator sorts below every escaped byte pair, so
// byte-wise comparison of encodings matches segment-wise comparison of the
// tuples, and no encoding is a prefix of another.

func appendSegment(dst, seg []byte) []byte {
	for _, b := range seg {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, 0x01)
}

func readSegment(src []byte) (seg, rest []byte, err error) {
	var out []byte
	for i := 0; i < len(src); i++ {
		b := src[i]
		if b != 0x00 {
			out = append(out, b)
			continue
		}
		if i+1 >= len(src) {
			return nil, nil, errors.New("cellstore: truncated segment escape")
		}
		switch src[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			return out, src[i+2:], nil
		default:
			return nil, nil, errors.New("cellstore: invalid segment escape")
		}
	}
	return nil, nil, errors.New("cellstore: unterminated segment")
}

// EncodeKey produces the logical universal key bytes for k. It names one
// cell version; the write-set hashes in ledger blocks are computed over
// these encodings.
func EncodeKey(k Key) []byte {
	out := make([]byte, 0, len(k.Table)+len(k.Column)+len(k.PK)+8+hashutil.DigestSize+8)
	out = appendSegment(out, []byte(k.Table))
	out = appendSegment(out, []byte(k.Column))
	out = appendSegment(out, k.PK)
	out = binary.BigEndian.AppendUint64(out, k.Version)
	out = append(out, k.ValueHash[:]...)
	return out
}

// DecodeKey parses universal key bytes.
func DecodeKey(data []byte) (Key, error) {
	var k Key
	seg, rest, err := readSegment(data)
	if err != nil {
		return k, fmt.Errorf("cellstore: table: %w", err)
	}
	k.Table = string(seg)
	seg, rest, err = readSegment(rest)
	if err != nil {
		return k, fmt.Errorf("cellstore: column: %w", err)
	}
	k.Column = string(seg)
	seg, rest, err = readSegment(rest)
	if err != nil {
		return k, fmt.Errorf("cellstore: pk: %w", err)
	}
	k.PK = seg
	if len(rest) != 8+hashutil.DigestSize {
		return k, errors.New("cellstore: bad key tail length")
	}
	k.Version = binary.BigEndian.Uint64(rest[:8])
	copy(k.ValueHash[:], rest[8:])
	return k, nil
}

// CellPrefix returns the tree key of a cell: its (table, column, primary
// key) reference. It doubles as the cell reference used by the transaction
// layer (DecodeRef inverts it).
func CellPrefix(table, column string, pk []byte) []byte {
	out := appendSegment(nil, []byte(table))
	out = appendSegment(out, []byte(column))
	return appendSegment(out, pk)
}

// DecodeRef parses a cell reference produced by CellPrefix.
func DecodeRef(ref []byte) (table, column string, pk []byte, err error) {
	seg, rest, err := readSegment(ref)
	if err != nil {
		return "", "", nil, fmt.Errorf("cellstore: ref table: %w", err)
	}
	table = string(seg)
	seg, rest, err = readSegment(rest)
	if err != nil {
		return "", "", nil, fmt.Errorf("cellstore: ref column: %w", err)
	}
	column = string(seg)
	seg, rest, err = readSegment(rest)
	if err != nil {
		return "", "", nil, fmt.Errorf("cellstore: ref pk: %w", err)
	}
	if len(rest) != 0 {
		return "", "", nil, errors.New("cellstore: trailing ref bytes")
	}
	return table, column, seg, nil
}

// ColumnPrefix returns the key prefix covering every cell of one column.
func ColumnPrefix(table, column string) []byte {
	out := appendSegment(nil, []byte(table))
	return appendSegment(out, []byte(column))
}

// PrefixEnd returns the smallest key greater than every key with the given
// prefix, for use as an exclusive scan bound.
func PrefixEnd(prefix []byte) []byte {
	out := make([]byte, len(prefix), len(prefix)+1)
	copy(out, prefix)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // prefix was all 0xFF: scan to the end
}

// ---------------------------------------------------------------------------
// Version (head and chain object) encoding

const (
	flagTombstone byte = 1 << 0
)

// EncodeVersion serializes a cell version: the head entry payload in the
// tree, and equally the content of a demoted chain object in the store.
func EncodeVersion(version uint64, value []byte, tombstone bool) []byte {
	var flag byte
	if tombstone {
		flag |= flagTombstone
	}
	out := make([]byte, 0, 1+binary.MaxVarintLen64+len(value))
	out = append(out, flag)
	out = binary.AppendUvarint(out, version)
	return append(out, value...)
}

// DecodeVersion parses an encoded cell version.
func DecodeVersion(data []byte) (version uint64, value []byte, tombstone bool, err error) {
	if len(data) == 0 {
		return 0, nil, false, errors.New("cellstore: empty cell version")
	}
	flag := data[0]
	if flag&^flagTombstone != 0 {
		return 0, nil, false, errors.New("cellstore: bad cell flags")
	}
	v, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return 0, nil, false, errors.New("cellstore: bad cell version")
	}
	return v, data[1+k:], flag&flagTombstone != 0, nil
}

// ValueHash returns the digest of a version's content — the address of its
// chain object and the value-hash component of its universal key.
func ValueHash(version uint64, value []byte, tombstone bool) hashutil.Digest {
	return hashutil.Sum(hashutil.DomainCell, EncodeVersion(version, value, tombstone))
}

// UniversalKey returns the logical universal key of a cell.
func UniversalKey(c Cell) Key {
	return Key{Table: c.Table, Column: c.Column, PK: c.PK, Version: c.Version,
		ValueHash: ValueHash(c.Version, c.Value, c.Tombstone)}
}

// Demoted describes a version that was superseded during Apply and now
// lives as a chain object in the store. The ledger indexes these to serve
// historical point lookups.
type Demoted struct {
	Ref     []byte // CellPrefix of the cell
	Version uint64
	Object  hashutil.Digest // content address of the encoded version
}

// ---------------------------------------------------------------------------
// Store: query layer over an authenticated POS-tree snapshot

// Store is a read/write view of the cell store at one tree snapshot. A
// Store sees each cell's head version as of its snapshot; older versions
// are resolved through earlier snapshots (one per ledger block) or the
// ledger's version index.
type Store struct {
	Tree *postree.Tree
}

// Apply persists a batch of cells and returns the Store of the new
// snapshot plus the versions it demoted into chain objects. Multiple
// versions of one cell in a batch are applied in version order.
func (s Store) Apply(cells []Cell) (Store, []Demoted, error) {
	var demoted []Demoted
	cas := s.Tree.Store()
	// Encode each cell's reference once; group by ref, demoting all but
	// the newest version per ref immediately.
	refs := make([][]byte, len(cells))
	for i := range cells {
		refs[i] = CellPrefix(cells[i].Table, cells[i].Column, cells[i].PK)
	}
	latest := make(map[string]int, len(cells))
	for i := range cells {
		j, ok := latest[string(refs[i])]
		if !ok {
			latest[string(refs[i])] = i
			continue
		}
		// Later batch positions win version ties: a transaction that
		// writes one cell twice at its commit version keeps the last
		// write, matching batch (and SQL) semantics.
		older := j
		if cells[i].Version >= cells[j].Version {
			latest[string(refs[i])] = i
		} else {
			older = i
		}
		enc := EncodeVersion(cells[older].Version, cells[older].Value, cells[older].Tombstone)
		demoted = append(demoted, Demoted{
			Ref:     refs[older],
			Version: cells[older].Version,
			Object:  cas.Put(hashutil.DomainCell, enc),
		})
	}
	edits := make([]postree.Edit, 0, len(latest))
	for _, i := range latest {
		c := cells[i]
		edits = append(edits, postree.Edit{
			Key:   refs[i],
			Value: EncodeVersion(c.Version, c.Value, c.Tombstone),
		})
	}
	nt, err := s.Tree.ApplyFunc(edits, func(key, oldValue []byte) {
		ver, _, _, err := DecodeVersion(oldValue)
		if err != nil {
			return
		}
		demoted = append(demoted, Demoted{
			Ref:     append([]byte(nil), key...),
			Version: ver,
			Object:  cas.Put(hashutil.DomainCell, oldValue),
		})
	})
	if err != nil {
		return Store{}, nil, err
	}
	return Store{Tree: nt}, demoted, nil
}

// GetHead returns the head version of a cell in this snapshot.
func (s Store) GetHead(table, column string, pk []byte) (Cell, bool, error) {
	raw, found, err := s.Tree.Get(CellPrefix(table, column, pk))
	if err != nil || !found {
		return Cell{}, false, err
	}
	ver, value, tomb, err := DecodeVersion(raw)
	if err != nil {
		return Cell{}, false, err
	}
	return Cell{Table: table, Column: column, PK: append([]byte(nil), pk...),
		Version: ver, Value: append([]byte(nil), value...), Tombstone: tomb}, true, nil
}

// GetLatest returns the head version if it is at or before asOf. A head
// newer than asOf reports not-found: within one snapshot the store only
// materializes heads — resolve older versions via an earlier ledger
// snapshot or the ledger's version index.
func (s Store) GetLatest(table, column string, pk []byte, asOf uint64) (Cell, bool, error) {
	c, found, err := s.GetHead(table, column, pk)
	if err != nil || !found {
		return Cell{}, false, err
	}
	if c.Version > asOf {
		return Cell{}, false, nil
	}
	return c, true, nil
}

// RangePK returns the live head cells of one column whose primary key lies
// in [pkLo, pkHi) and whose version is at or before asOf. Tombstoned rows
// and rows newer than asOf are omitted.
func (s Store) RangePK(table, column string, pkLo, pkHi []byte, asOf uint64) ([]Cell, error) {
	start, end := RefRange(table, column, pkLo, pkHi)
	var out []Cell
	err := s.Tree.Scan(start, end, func(e postree.Entry) bool {
		_, _, pk, err := DecodeRef(e.Key)
		if err != nil {
			return false
		}
		ver, value, tomb, err := DecodeVersion(e.Value)
		if err != nil {
			return false
		}
		if tomb || ver > asOf {
			return true
		}
		out = append(out, Cell{Table: table, Column: column, PK: append([]byte(nil), pk...),
			Version: ver, Value: append([]byte(nil), value...)})
		return true
	})
	return out, err
}

// RefRange returns the tree-key bounds of a pk range scan over one
// column: the [start, end) pair a RangeProof over [pkLo, pkHi) must carry.
// Audit clients use it to check a proven range is the range they asked
// for, not a narrower substitute.
func RefRange(table, column string, pkLo, pkHi []byte) (start, end []byte) {
	start = appendSegment(ColumnPrefix(table, column), pkLo)
	if pkHi != nil {
		end = appendSegment(ColumnPrefix(table, column), pkHi)
	} else {
		end = PrefixEnd(ColumnPrefix(table, column))
	}
	return start, end
}

// ProveGetHead returns the head version of a cell together with a point
// proof under this snapshot's root. Absence is also proven.
func (s Store) ProveGetHead(table, column string, pk []byte) (Cell, bool, postree.PointProof, error) {
	p, err := s.Tree.ProveGet(CellPrefix(table, column, pk))
	if err != nil {
		return Cell{}, false, postree.PointProof{}, err
	}
	if !p.Found {
		return Cell{}, false, p, nil
	}
	ver, value, tomb, err := DecodeVersion(p.Value)
	if err != nil {
		return Cell{}, false, postree.PointProof{}, err
	}
	c := Cell{Table: table, Column: column, PK: append([]byte(nil), pk...),
		Version: ver, Value: append([]byte(nil), value...), Tombstone: tomb}
	return c, true, p, nil
}

// ProveRangePK returns the result of RangePK (at this snapshot's own
// versions) together with one range proof covering the whole scan. The
// proof's completeness guarantee is what lets a verified analytical query
// cost a single traversal (Figure 7).
func (s Store) ProveRangePK(table, column string, pkLo, pkHi []byte) ([]Cell, postree.RangeProof, error) {
	start, end := RefRange(table, column, pkLo, pkHi)
	proof, err := s.Tree.ProveScan(start, end)
	if err != nil {
		return nil, postree.RangeProof{}, err
	}
	cells, err := DecodeEntries(proof.Entries)
	if err != nil {
		return nil, postree.RangeProof{}, err
	}
	live := cells[:0]
	for _, c := range cells {
		if !c.Tombstone {
			live = append(live, c)
		}
	}
	return live, proof, nil
}

// DecodeEntries decodes cell-store tree entries (ref -> head version) into
// cells, including tombstones.
func DecodeEntries(entries []postree.Entry) ([]Cell, error) {
	out := make([]Cell, 0, len(entries))
	for _, e := range entries {
		table, column, pk, err := DecodeRef(e.Key)
		if err != nil {
			return nil, err
		}
		ver, value, tomb, err := DecodeVersion(e.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, Cell{Table: table, Column: column, PK: pk,
			Version: ver, Value: value, Tombstone: tomb})
	}
	return out, nil
}

// LoadVersion loads a demoted version object from the store.
func LoadVersion(store cas.Store, table, column string, pk []byte, object hashutil.Digest) (Cell, error) {
	data, err := store.Get(object)
	if err != nil {
		return Cell{}, err
	}
	ver, value, tomb, err := DecodeVersion(data)
	if err != nil {
		return Cell{}, err
	}
	return Cell{Table: table, Column: column, PK: append([]byte(nil), pk...),
		Version: ver, Value: append([]byte(nil), value...), Tombstone: tomb}, nil
}

// KeySuccessor returns the smallest key strictly greater than key.
func KeySuccessor(key []byte) []byte {
	out := make([]byte, len(key)+1)
	copy(out, key)
	return out
}
