package ledger

import (
	"fmt"
	"sort"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/hashutil"
	"spitz/internal/mtree"
	"spitz/internal/postree"
)

// VersionEntry is one demoted-version index entry in portable form: the
// cell it belongs to (by CellPrefix), the superseded version, and the
// content address of the encoded version object. The durable layer
// persists these in its VLOG so a root-addressed reopen recovers the
// auditor's version index without replaying history.
type VersionEntry struct {
	Ref     []byte
	Version uint64
	Object  hashutil.Digest
}

// Reopen reconstructs a ledger from its header chain and persisted
// version-index entries, addressing the live cell store by the head
// block's CellRoot. Only the POS-tree root node is read here; everything
// else faults in from the store on first touch, so reopen cost is
// O(height) header work, not O(state).
//
// The header chain is validated structurally (heights and parent links);
// callers that read headers from untrusted storage get content-address
// verification for free when each header was fetched by its own hash.
// Reopen takes ownership of headers and enables the demotion log (see
// PendingDemotions).
func Reopen(store cas.Store, headers []BlockHeader, demoted []VersionEntry) (*Ledger, error) {
	l := New(store)
	var parent hashutil.Digest
	for i, h := range headers {
		if h.Height != uint64(i) {
			return nil, fmt.Errorf("ledger: reopen: header %d carries height %d", i, h.Height)
		}
		if h.Parent != parent {
			return nil, fmt.Errorf("ledger: reopen: header %d breaks the parent chain", i)
		}
		l.commit.Append(mtree.LeafHash(h.Encode()))
		parent = h.Hash()
	}
	if len(headers) > 0 {
		head := headers[len(headers)-1]
		tree, err := postree.Load(store, head.CellRoot)
		if err != nil {
			return nil, fmt.Errorf("ledger: reopen cell root: %w", err)
		}
		l.cells = cellstore.Store{Tree: tree}
		l.headers = headers
	}
	for _, e := range demoted {
		l.insertVersionLocked(e.Ref, versionRef{version: e.Version, object: e.Object})
	}
	l.demoLog = true
	return l, nil
}

// EnableDemotionLog makes the ledger retain demoted-version entries from
// future commits until ClearDemotions. The durable layer enables it on
// ledgers whose version index must survive restarts; without it the tail
// is discarded as it is produced.
func (l *Ledger) EnableDemotionLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.demoLog = true
}

// PendingDemotions returns a copy of the demoted-version entries recorded
// since the last ClearDemotions. The checkpoint protocol persists them,
// then acknowledges with ClearDemotions(len(entries)) — so a failed
// persist loses nothing.
func (l *Ledger) PendingDemotions() []VersionEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]VersionEntry(nil), l.demoTail...)
}

// ClearDemotions drops the first n pending demotion entries, which the
// caller has durably persisted.
func (l *Ledger) ClearDemotions(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n >= len(l.demoTail) {
		l.demoTail = nil
		return
	}
	l.demoTail = append([]VersionEntry(nil), l.demoTail[n:]...)
}

// insertVersionLocked records one demoted version in the auditor's index,
// keeping each cell's list ascending by version and dropping duplicates.
// Ordering matters because GetAsOf binary-searches the list, and a group
// commit folding several writes to one cell can surface its demotions out
// of order; duplicates arise when a WAL tail is replayed over entries
// already loaded from the VLOG.
func (l *Ledger) insertVersionLocked(ref []byte, vr versionRef) {
	key := string(ref)
	refs := l.versions[key]
	if n := len(refs); n == 0 || vr.version > refs[n-1].version {
		l.versions[key] = append(refs, vr)
	} else {
		i := sort.Search(len(refs), func(i int) bool { return refs[i].version >= vr.version })
		if refs[i].version == vr.version {
			return // already recorded: a replayed demotion
		}
		refs = append(refs, versionRef{})
		copy(refs[i+1:], refs[i:])
		refs[i] = vr
		l.versions[key] = refs
	}
	if l.demoLog {
		l.demoTail = append(l.demoTail, VersionEntry{
			Ref:     append([]byte(nil), ref...),
			Version: vr.version,
			Object:  vr.object,
		})
	}
}
