package ledger

import (
	"encoding/binary"
	"fmt"

	"spitz/internal/hashutil"
)

// ClusterDigest is the client-verifiable commitment of a sharded
// deployment (Section 5.2): one ledger Digest per shard plus a combined
// root binding the whole vector. A client saves the ClusterDigest and
// verifies each shard's proofs against that shard's entry; the combined
// root lets it pin the entire cluster state under one hash.
//
// Shards advance independently — a ClusterDigest is a vector of
// per-shard snapshots, each internally consistent, not a cross-shard
// atomic cut.
type ClusterDigest struct {
	Shards []Digest
	Root   hashutil.Digest
}

// CombineShardDigests computes the combined root over a shard digest
// vector: the canonical encoding of every (height, root) pair, in shard
// order, hashed under the block domain.
func CombineShardDigests(shards []Digest) hashutil.Digest {
	h := hashutil.NewStream(hashutil.DomainCluster)
	buf := make([]byte, 8+8+hashutil.DigestSize)
	binary.BigEndian.PutUint64(buf, uint64(len(shards)))
	h.Part(buf[:8])
	for i, d := range shards {
		binary.BigEndian.PutUint64(buf, uint64(i))
		binary.BigEndian.PutUint64(buf[8:], d.Height)
		copy(buf[16:], d.Root[:])
		h.Part(buf)
	}
	return h.Sum()
}

// NewClusterDigest builds a ClusterDigest from per-shard digests.
func NewClusterDigest(shards []Digest) ClusterDigest {
	out := ClusterDigest{Shards: append([]Digest(nil), shards...)}
	out.Root = CombineShardDigests(out.Shards)
	return out
}

// Check validates the combined root against the shard vector, so a
// ClusterDigest received over the network cannot misbind its entries.
func (d ClusterDigest) Check() error {
	if got := CombineShardDigests(d.Shards); got != d.Root {
		return fmt.Errorf("ledger: cluster digest root %s does not bind its %d shard digests",
			d.Root.Short(), len(d.Shards))
	}
	return nil
}
