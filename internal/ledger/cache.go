package ledger

import (
	"sync"

	"spitz/internal/cellstore"
	"spitz/internal/mtree"
	"spitz/internal/obs"
	"spitz/internal/postree"
)

// Proof-cache effectiveness counters: a hot verified-read working set
// shows up as a high hit ratio; every commit shows up as one
// invalidation (the cache holds a single head generation).
var (
	mProofCacheHits  = obs.Default.Counter("spitz_proofcache_hits_total")
	mProofCacheMiss  = obs.Default.Counter("spitz_proofcache_misses_total")
	mProofCacheInval = obs.Default.Counter("spitz_proofcache_invalidations_total")
)

// proofCacheSize bounds the number of memoized head proofs. Entries are
// whole verified-read responses (point proof + block inclusion), so even
// a few thousand cover any realistic hot set.
const proofCacheSize = 8192

// proofCache memoizes fully assembled head point proofs keyed by
// (digest, cell reference): a verified read repeated at the same ledger
// height reuses the entire proof instead of re-walking the POS-tree and
// the commitment tree. The cache holds exactly one generation — the
// current head digest — and is invalidated wholesale on commit, so a
// proof can never be served against a digest it was not built for
// (entries additionally record the digest they were built under, and
// lookups compare it, making a stale hit structurally impossible).
type proofCache struct {
	mu     sync.Mutex
	digest Digest // the head digest every entry was built for
	m      map[string]cachedRead
}

// cachedRead is one memoized head point read with its unified proof.
type cachedRead struct {
	cell  cellstore.Cell
	ok    bool
	point postree.PointProof
	inc   mtree.InclusionProof
	hdr   BlockHeader
}

// get returns the cached read for ref, valid only when the cache
// generation matches the digest captured by the caller inside the
// ledger's read-locked critical section.
func (c *proofCache) get(d Digest, ref string) (cachedRead, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || c.digest != d {
		mProofCacheMiss.Inc()
		return cachedRead{}, false
	}
	e, ok := c.m[ref]
	if ok {
		mProofCacheHits.Inc()
	} else {
		mProofCacheMiss.Inc()
	}
	return e, ok
}

// put stores a read built under digest d, resetting the generation if the
// cache was built for an older digest.
func (c *proofCache) put(d Digest, ref string, e cachedRead) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || c.digest != d {
		c.m = make(map[string]cachedRead)
		c.digest = d
	}
	if len(c.m) >= proofCacheSize {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[ref] = e
}

// invalidate drops every entry. Commit calls it while holding the
// ledger's write lock, so no read-locked prover can observe the old
// generation after the head moves.
func (c *proofCache) invalidate() {
	mProofCacheInval.Inc()
	c.mu.Lock()
	c.m = nil
	c.digest = Digest{}
	c.mu.Unlock()
}
