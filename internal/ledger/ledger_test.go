package ledger

import (
	"bytes"
	"fmt"
	"testing"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/hashutil"
	"spitz/internal/mtree"
)

func cellsFor(version uint64, n int, tag string) []cellstore.Cell {
	out := make([]cellstore.Cell, n)
	for i := range out {
		out[i] = cellstore.Cell{Table: "t", Column: "c",
			PK:      []byte(fmt.Sprintf("%s-%04d", tag, i)),
			Version: version, Value: []byte(fmt.Sprintf("v%d-%d", version, i))}
	}
	return out
}

func commitN(t *testing.T, l *Ledger, blocks int) {
	t.Helper()
	for b := 0; b < blocks; b++ {
		v := uint64(b + 1)
		txns := []TxnSummary{{ID: v, Statement: fmt.Sprintf("PUT batch %d", b),
			WriteHash: WriteSetHash(cellsFor(v, 10, fmt.Sprintf("b%d", b)))}}
		if _, err := l.Commit(v, txns, cellsFor(v, 10, fmt.Sprintf("b%d", b))); err != nil {
			t.Fatalf("Commit(%d): %v", b, err)
		}
	}
}

func TestEmptyLedger(t *testing.T) {
	l := New(cas.NewMemory())
	if l.Height() != 0 {
		t.Fatal("empty ledger has blocks")
	}
	d := l.Digest()
	if d.Height != 0 {
		t.Fatal("empty digest nonzero height")
	}
	if _, ok := l.Head(); ok {
		t.Fatal("Head on empty ledger")
	}
	if _, err := l.Header(0); err == nil {
		t.Fatal("Header(0) on empty ledger succeeded")
	}
}

func TestCommitChainsBlocks(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 5)
	if l.Height() != 5 {
		t.Fatalf("Height = %d", l.Height())
	}
	var prev hashutil.Digest
	for i := uint64(0); i < 5; i++ {
		h, err := l.Header(i)
		if err != nil {
			t.Fatal(err)
		}
		if h.Height != i {
			t.Fatalf("block %d has height %d", i, h.Height)
		}
		if h.Parent != prev {
			t.Fatalf("block %d parent hash broken", i)
		}
		prev = h.Hash()
	}
}

func TestCommitRejectsNonMonotonicVersion(t *testing.T) {
	l := New(cas.NewMemory())
	if _, err := l.Commit(5, nil, cellsFor(5, 1, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(5, nil, cellsFor(5, 1, "b")); err == nil {
		t.Fatal("same version accepted twice")
	}
	if _, err := l.Commit(4, nil, cellsFor(4, 1, "c")); err == nil {
		t.Fatal("older version accepted")
	}
}

func TestCommitRejectsWrongCellVersion(t *testing.T) {
	l := New(cas.NewMemory())
	cells := cellsFor(3, 2, "x")
	cells[1].Version = 99
	if _, err := l.Commit(3, nil, cells); err == nil {
		t.Fatal("cell with mismatched version accepted")
	}
}

func TestHeaderEncodeDecode(t *testing.T) {
	h := BlockHeader{Height: 7, Version: 99, CellCount: 1234, TxnCount: 5}
	h.Parent = hashutil.Sum(hashutil.DomainBlock, []byte("p"))
	h.CellRoot = hashutil.Sum(hashutil.DomainPOSLeaf, []byte("r"))
	h.BodyHash = hashutil.Sum(hashutil.DomainStmt, []byte("b"))
	got, err := DecodeHeader(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip mismatch: %+v vs %+v", got, h)
	}
	if _, err := DecodeHeader(h.Encode()[:10]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestBodyRoundTrip(t *testing.T) {
	l := New(cas.NewMemory())
	txns := []TxnSummary{
		{ID: 1, Statement: "INSERT INTO t VALUES (1)", WriteHash: hashutil.Sum(0x01, []byte("a"))},
		{ID: 2, Statement: "UPDATE t SET c = 2", WriteHash: hashutil.Sum(0x01, []byte("b"))},
	}
	if _, err := l.Commit(1, txns, cellsFor(1, 3, "a")); err != nil {
		t.Fatal(err)
	}
	got, err := l.Body(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Statement != txns[0].Statement || got[1].ID != 2 ||
		got[1].WriteHash != txns[1].WriteHash {
		t.Fatalf("body mismatch: %+v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	l := New(cas.NewMemory())
	l.Commit(1, nil, []cellstore.Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("old")}})
	l.Commit(2, nil, []cellstore.Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 2, Value: []byte("new")}})

	snap0, err := l.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	c, ok, _ := snap0.GetLatest("t", "c", []byte("k"), 1)
	if !ok || string(c.Value) != "old" {
		t.Fatal("historical snapshot does not serve old value")
	}
	snap1, _ := l.Snapshot(1)
	c, _, _ = snap1.GetLatest("t", "c", []byte("k"), 2)
	if string(c.Value) != "new" {
		t.Fatal("latest snapshot wrong")
	}
}

func TestProveGetLatestVerifies(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 4)
	d := l.Digest()

	cell, ok, proof, err := l.ProveGetLatest(3, "t", "c", []byte("b2-0003"))
	if err != nil || !ok {
		t.Fatalf("ProveGetLatest: ok=%v err=%v", ok, err)
	}
	if string(cell.Value) != "v3-3" {
		t.Fatalf("cell value = %q", cell.Value)
	}
	if err := proof.Verify(d); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	cells, err := proof.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || string(cells[0].Value) != "v3-3" {
		t.Fatalf("proof cells = %+v", cells)
	}

	// Proof against an older block height also verifies.
	_, ok, proof, err = l.ProveGetLatest(1, "t", "c", []byte("b0-0001"))
	if err != nil || !ok {
		t.Fatal("historical read failed")
	}
	if err := proof.Verify(d); err != nil {
		t.Fatalf("historical proof: %v", err)
	}
}

func TestProveAbsence(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 2)
	_, ok, proof, err := l.ProveGetLatest(1, "t", "c", []byte("never-written"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("absent key found")
	}
	if err := proof.Verify(l.Digest()); err != nil {
		t.Fatalf("absence proof: %v", err)
	}
	if cells, _ := proof.Cells(); len(cells) != 0 {
		t.Fatal("absence proof carries cells")
	}
}

func TestProveRangePK(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	cells, proof, err := l.ProveRangePK(2, "t", "c", []byte("b1-0002"), []byte("b1-0007"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("range returned %d cells", len(cells))
	}
	if err := proof.Verify(l.Digest()); err != nil {
		t.Fatalf("range proof: %v", err)
	}
	decoded, err := proof.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded %d cells", len(decoded))
	}
}

func TestProofRejectsTamperedHeader(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	d := l.Digest()
	_, _, proof, err := l.ProveGetLatest(2, "t", "c", []byte("b1-0001"))
	if err != nil {
		t.Fatal(err)
	}
	proof.Header.CellCount++
	if err := proof.Verify(d); err == nil {
		t.Fatal("tampered header verified")
	}
}

func TestProofRejectsWrongDigest(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	_, _, proof, err := l.ProveGetLatest(2, "t", "c", []byte("b1-0001"))
	if err != nil {
		t.Fatal(err)
	}
	bad := l.Digest()
	bad.Root[0] ^= 1
	if err := proof.Verify(bad); err == nil {
		t.Fatal("proof verified against corrupted digest")
	}
	short := l.Digest()
	short.Height = 1 // digest older than the block's height
	if err := proof.Verify(short); err == nil {
		t.Fatal("proof verified against too-old digest")
	}
}

func TestProofRejectsCrossBlockReplay(t *testing.T) {
	// A proof for block 1's state must not verify when its header is
	// swapped for block 2's.
	l := New(cas.NewMemory())
	l.Commit(1, nil, []cellstore.Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 1, Value: []byte("one")}})
	l.Commit(2, nil, []cellstore.Cell{{Table: "t", Column: "c", PK: []byte("k"), Version: 2, Value: []byte("two")}})
	d := l.Digest()
	_, _, oldProof, err := l.ProveGetLatest(0, "t", "c", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	newHeader, _ := l.Header(1)
	forged := oldProof
	forged.Header = newHeader
	if err := forged.Verify(d); err == nil {
		t.Fatal("old state verified under new block header")
	}
}

func TestProofRejectsTamperedPayload(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 1)
	_, _, proof, err := l.ProveGetLatest(0, "t", "c", []byte("b0-0000"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting the proven value must fail verification: the leaf hash
	// commits to the head payload.
	if proof.Point == nil || !proof.Point.Found {
		t.Fatal("expected a found point proof")
	}
	proof.Point.Value = append([]byte(nil), proof.Point.Value...)
	proof.Point.Value[1] ^= 0xFF
	if err := proof.Verify(l.Digest()); err == nil {
		t.Fatal("tampered payload verified")
	}
}

func TestConsistencyAcrossGrowth(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	old := l.Digest()
	commitN2 := func() {
		v := l.Digest().Height + 1
		if _, err := l.Commit(uint64(v)*100, nil, cellsFor(uint64(v)*100, 5, "late")); err != nil {
			t.Fatal(err)
		}
	}
	commitN2()
	commitN2()
	cur := l.Digest()
	cons, err := l.ConsistencyProof(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Verify(old.Root, cur.Root); err != nil {
		t.Fatalf("consistency proof: %v", err)
	}
	// A forked history must not verify.
	forged := old
	forged.Root[3] ^= 0x40
	if err := cons.Verify(forged.Root, cur.Root); err == nil {
		t.Fatal("consistency verified against forged old digest")
	}
}

func TestStructuralSharingAcrossBlocks(t *testing.T) {
	// Consecutive blocks share index nodes: committing a small block on a
	// large database must grow storage by far less than the database size.
	store := cas.NewMemory()
	l := New(store)
	big := cellsFor(1, 20000, "base")
	if _, err := l.Commit(1, nil, big); err != nil {
		t.Fatal(err)
	}
	base := store.Stats().PhysicalBytes
	if _, err := l.Commit(2, nil, cellsFor(2, 10, "delta")); err != nil {
		t.Fatal(err)
	}
	grown := store.Stats().PhysicalBytes - base
	if grown > base/10 {
		t.Fatalf("small block grew store by %d of %d; block index instances not shared", grown, base)
	}
}

func TestWriteSetHashBindsCells(t *testing.T) {
	a := WriteSetHash(cellsFor(1, 3, "x"))
	b := WriteSetHash(cellsFor(1, 3, "x"))
	if a != b {
		t.Fatal("WriteSetHash not deterministic")
	}
	mod := cellsFor(1, 3, "x")
	mod[1].Value = []byte("changed")
	if WriteSetHash(mod) == a {
		t.Fatal("WriteSetHash ignores values")
	}
}

func TestDigestAdvancesPerBlock(t *testing.T) {
	l := New(cas.NewMemory())
	var roots []hashutil.Digest
	for i := 0; i < 4; i++ {
		if _, err := l.Commit(uint64(i+1), nil, cellsFor(uint64(i+1), 2, fmt.Sprintf("g%d", i))); err != nil {
			t.Fatal(err)
		}
		d := l.Digest()
		if d.Height != uint64(i+1) {
			t.Fatalf("digest height = %d", d.Height)
		}
		roots = append(roots, d.Root)
	}
	for i := 1; i < len(roots); i++ {
		if roots[i-1] == roots[i] {
			t.Fatal("digest did not change across blocks")
		}
	}
}

func TestInclusionMatchesMtreeSemantics(t *testing.T) {
	// The commitment leaves are LeafHash(header.Encode()); verify one
	// manually.
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	h, _ := l.Header(1)
	d := l.Digest()
	_, _, proof, err := l.ProveGetLatest(1, "t", "c", []byte("b0-0000"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(proof.Header.Encode(), h.Encode()) {
		t.Fatal("proof header is not block 1's header")
	}
	if err := proof.Inclusion.Verify(d.Root, mtree.LeafHash(h.Encode())); err != nil {
		t.Fatalf("manual inclusion check: %v", err)
	}
}
