package ledger

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
)

func commitCells(t testing.TB, l *Ledger, version uint64, cells ...cellstore.Cell) BlockHeader {
	t.Helper()
	for i := range cells {
		cells[i].Version = version
	}
	h, err := l.Commit(version, []TxnSummary{{ID: version, Statement: "t"}}, cells)
	if err != nil {
		t.Fatalf("commit v%d: %v", version, err)
	}
	return h
}

// TestProofCacheServesAndInvalidates pins the cache contract directly:
// a repeated head read hits the memoized proof (same content), and a
// commit invalidates the generation so the next read is proven against
// the new digest — never the old one.
func TestProofCacheServesAndInvalidates(t *testing.T) {
	l := New(cas.NewMemory())
	commitCells(t, l, 1, cellstore.Cell{Table: "t", Column: "c", PK: []byte("a"), Value: []byte("v1")})

	c1, ok1, p1, d1, err := l.ProveGetHead("t", "c", []byte("a"))
	if err != nil || !ok1 {
		t.Fatalf("first read: %v ok=%v", err, ok1)
	}
	if err := p1.Verify(d1); err != nil {
		t.Fatalf("first proof: %v", err)
	}
	c2, ok2, p2, d2, err := l.ProveGetHead("t", "c", []byte("a"))
	if err != nil || !ok2 || d2 != d1 {
		t.Fatalf("second read diverged: %v", err)
	}
	if string(c1.Value) != string(c2.Value) {
		t.Fatal("cached read returned different value")
	}
	if err := p2.Verify(d1); err != nil {
		t.Fatalf("cached proof does not verify: %v", err)
	}

	// Commit a new version: the digest moves and the cached proof for the
	// old digest must not be served against the new one.
	commitCells(t, l, 2, cellstore.Cell{Table: "t", Column: "c", PK: []byte("a"), Value: []byte("v2")})
	c3, ok3, p3, d3, err := l.ProveGetHead("t", "c", []byte("a"))
	if err != nil || !ok3 {
		t.Fatalf("post-commit read: %v", err)
	}
	if d3 == d1 {
		t.Fatal("digest did not advance")
	}
	if string(c3.Value) != "v2" {
		t.Fatalf("post-commit read served stale value %q", c3.Value)
	}
	if err := p3.Verify(d3); err != nil {
		t.Fatalf("post-commit proof: %v", err)
	}
	// The old proof must fail against the new digest and vice versa: a
	// proof can only verify against the root it was built for.
	if err := p1.Verify(d3); err == nil {
		t.Fatal("old proof verified against the new digest")
	}
	if err := p3.Verify(d1); err == nil {
		t.Fatal("new proof verified against the old digest")
	}
}

// TestProofCacheConcurrentCommits is the cache-correctness race test:
// concurrent committers churn a hot key set while readers hammer
// ProveGetHead on the same keys (maximizing cache hits); every returned
// proof must verify against exactly the digest returned with it. Run
// with -race: a proof assembled from a stale cache generation would
// either fail Verify here or trip the detector.
func TestProofCacheConcurrentCommits(t *testing.T) {
	l := New(cas.NewMemory())
	const keys = 8
	pk := func(i int) []byte { return []byte(fmt.Sprintf("k%02d", i)) }
	for i := 0; i < keys; i++ {
		commitCells(t, l, uint64(i+1), cellstore.Cell{Table: "t", Column: "c", PK: pk(i), Value: []byte("v0")})
	}

	var stop atomic.Bool
	var writerWg sync.WaitGroup
	writerErr := make(chan error, 1)
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for v := uint64(keys + 1); !stop.Load(); v++ {
			_, err := l.Commit(v, []TxnSummary{{ID: v, Statement: "w"}},
				[]cellstore.Cell{{Table: "t", Column: "c", PK: pk(int(v) % keys),
					Version: v, Value: []byte(fmt.Sprintf("v%d", v))}})
			if err != nil {
				select {
				case writerErr <- err:
				default:
				}
				return
			}
		}
	}()

	const readers = 4
	var readerWg sync.WaitGroup
	readerErrs := make([]error, readers)
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			for i := 0; i < 3000; i++ {
				cell, ok, p, d, err := l.ProveGetHead("t", "c", pk(i%keys))
				if err != nil {
					readerErrs[r] = err
					return
				}
				if !ok {
					readerErrs[r] = fmt.Errorf("read %d: key missing", i)
					return
				}
				if err := p.Verify(d); err != nil {
					readerErrs[r] = fmt.Errorf("read %d: proof served with digest %d does not verify against it: %w",
						i, d.Height, err)
					return
				}
				if cell.Tombstone {
					readerErrs[r] = fmt.Errorf("read %d: unexpected tombstone", i)
					return
				}
			}
		}(r)
	}
	// Readers run a fixed count under full write churn; once they finish,
	// stop the writer.
	readerWg.Wait()
	stop.Store(true)
	writerWg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	for r, err := range readerErrs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}
}

// TestProveBatchLedger exercises the server half of a deferred audit at
// the ledger level: receipts at an old digest are proven after further
// commits, the consistency pair links old and current, and the proof
// carries the old block's values.
func TestProveBatchLedger(t *testing.T) {
	l := New(cas.NewMemory())
	commitCells(t, l, 1,
		cellstore.Cell{Table: "t", Column: "c", PK: []byte("a"), Value: []byte("va")},
		cellstore.Cell{Table: "t", Column: "c", PK: []byte("b"), Value: []byte("vb")})
	at := l.Digest()
	// The ledger keeps growing after the reads were accepted.
	commitCells(t, l, 2, cellstore.Cell{Table: "t", Column: "c", PK: []byte("a"), Value: []byte("va2")})
	trusted := at

	res, err := l.ProveBatch(trusted, at, []BatchQuery{
		{Table: "t", Column: "c", PK: []byte("a")},
		{Table: "t", Column: "c", PK: []byte("missing")},
		{Table: "t", Column: "c", PK: []byte("a"), PKHi: nil, Range: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest.Height != 2 {
		t.Fatalf("digest height %d", res.Digest.Height)
	}
	if err := res.ConsAt.Verify(at.Root, res.Digest.Root); err != nil {
		t.Fatalf("consistency at->cur: %v", err)
	}
	if err := res.ConsTrusted.Verify(trusted.Root, res.Digest.Root); err != nil {
		t.Fatalf("consistency trusted->cur: %v", err)
	}
	if err := res.Proof.Verify(res.Digest); err != nil {
		t.Fatalf("batch proof: %v", err)
	}
	if res.Proof.Header.Height != at.Height-1 {
		t.Fatalf("proven block %d, want %d", res.Proof.Header.Height, at.Height-1)
	}
	pts := res.Proof.Points
	if pts == nil || len(pts.Keys) != 2 {
		t.Fatalf("expected 2 point proofs")
	}
	if !pts.Found[0] || pts.Found[1] {
		t.Fatalf("found flags wrong: %v", pts.Found)
	}
	_, v, _, err := cellstore.DecodeVersion(pts.Values[0])
	if err != nil || string(v) != "va" {
		t.Fatalf("proven value %q (the value AT the receipt digest, not the head)", v)
	}
	if len(res.Proof.Ranges) != 1 {
		t.Fatalf("expected 1 range proof")
	}

	// A receipt digest the ledger never produced is refused.
	bad := at
	bad.Height = 99
	if _, err := l.ProveBatch(trusted, bad, nil); err == nil {
		t.Fatal("proved a batch at an impossible digest")
	}
}
