package ledger

import (
	"fmt"

	"spitz/internal/cellstore"
	"spitz/internal/mtree"
	"spitz/internal/postree"
)

// BatchQuery is one deferred-audit receipt being proven: a point read
// (Range false) or a primary-key range scan (Range true) of one column.
type BatchQuery struct {
	Table  string
	Column string
	PK     []byte
	PKHi   []byte
	Range  bool
}

// BatchProof proves a batch of reads against one ledger block with a
// single block binding: one header, one inclusion proof, one aggregated
// multi-key point proof (shared sibling nodes instead of N independent
// paths) and one range proof per range query. It is the server half of
// deferred verification: a client flushes all receipts taken at one
// digest through one of these.
type BatchProof struct {
	Header    BlockHeader
	Inclusion mtree.InclusionProof
	// Points covers every point query, in request order among point
	// queries; nil when the batch had none.
	Points *postree.BatchProof
	// Ranges covers every range query, in request order among range
	// queries.
	Ranges []postree.RangeProof
}

// Verify checks the batch proof against a client-saved ledger digest,
// exactly as Proof.Verify does for a single read: the block must be part
// of the ledger the digest commits to, and every aggregated cell proof
// must hash to the block's cell-tree root. Verification is all-or-nothing
// — a single corrupt shared node rejects the whole batch, so no covered
// receipt can be silently accepted.
func (p BatchProof) Verify(d Digest) error {
	if p.Header.Height >= d.Height {
		return ErrProofInvalid // block not covered by the digest
	}
	if p.Inclusion.TreeSize != int(d.Height) || p.Inclusion.Index != int(p.Header.Height) {
		return ErrProofInvalid
	}
	leaf := mtree.LeafHash(p.Header.Encode())
	if err := p.Inclusion.Verify(d.Root, leaf); err != nil {
		return ErrProofInvalid
	}
	if p.Points != nil {
		if err := p.Points.Verify(p.Header.CellRoot); err != nil {
			return ErrProofInvalid
		}
	}
	for i := range p.Ranges {
		if err := p.Ranges[i].Verify(p.Header.CellRoot); err != nil {
			return ErrProofInvalid
		}
	}
	return nil
}

// BatchRes is everything a ProveBatch round trip returns, captured under
// one lock acquisition: the current digest, consistency proofs advancing
// the client's trusted digest and showing the receipts' digest is a
// genuine prefix of the same history, and the batch proof itself.
type BatchRes struct {
	Digest      Digest
	ConsTrusted mtree.ConsistencyProof // trusted -> current
	ConsAt      mtree.ConsistencyProof // receipt digest -> current
	Proof       BatchProof
}

// ProveBatch serves one deferred-verification flush: it proves every
// query in the batch at the block the digest `at` committed as head
// (height at.Height-1), bound to the current ledger state. `trusted` is
// the client's trusted digest (its height may be zero for a fresh
// client); the returned ConsTrusted lets the client advance trust to the
// returned digest, and ConsAt proves `at` — the digest the optimistic
// reads were accepted at — is a prefix of that same history, so a server
// that invented `at` at read time is caught here even before any value
// comparison.
func (l *Ledger) ProveBatch(trusted, at Digest, queries []BatchQuery) (BatchRes, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var res BatchRes
	res.Digest = l.digestLocked()
	if at.Height == 0 || at.Height > res.Digest.Height {
		return BatchRes{}, fmt.Errorf("ledger: batch digest height %d outside ledger of height %d",
			at.Height, res.Digest.Height)
	}
	var err error
	if res.ConsTrusted, err = l.commit.ConsistencyProof(int(trusted.Height)); err != nil {
		return BatchRes{}, err
	}
	if res.ConsAt, err = l.commit.ConsistencyProof(int(at.Height)); err != nil {
		return BatchRes{}, err
	}
	height := at.Height - 1
	h, snap, err := l.snapshotLocked(height)
	if err != nil {
		return BatchRes{}, err
	}
	var pointKeys [][]byte
	for _, q := range queries {
		if !q.Range {
			pointKeys = append(pointKeys, cellstore.CellPrefix(q.Table, q.Column, q.PK))
		}
	}
	if len(pointKeys) > 0 {
		bp, err := snap.Tree.ProveGetBatch(pointKeys)
		if err != nil {
			return BatchRes{}, err
		}
		res.Proof.Points = &bp
	}
	for _, q := range queries {
		if !q.Range {
			continue
		}
		_, rp, err := snap.ProveRangePK(q.Table, q.Column, q.PK, q.PKHi)
		if err != nil {
			return BatchRes{}, err
		}
		res.Proof.Ranges = append(res.Proof.Ranges, rp)
	}
	inc, err := l.blockInclusion(height)
	if err != nil {
		return BatchRes{}, err
	}
	res.Proof.Header = h
	res.Proof.Inclusion = inc
	return res, nil
}
