package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/hashutil"
	"spitz/internal/mtree"
	"spitz/internal/postree"
)

// Snapshot persistence: a ledger (headers, version index, and every live
// content-addressed object) serializes to a stream and reloads into a
// fresh store. Objects are written with their hash domains and re-inserted
// through the content-addressed Put on load, so a corrupted snapshot
// cannot smuggle an object under a digest it does not hash to — the
// restored database is exactly as verifiable as the original.

const snapshotMagic = "SPITZSNAP1"

// WriteSnapshot serializes the ledger: block headers, the demoted-version
// index, transaction bodies, every node of the latest cell-store instance,
// and every chain object. Historical block index instances are *not*
// exported — after a restore, reads and proofs work at the restored head,
// and history continues from there (the documented durability trade-off:
// per-block time travel restarts at the snapshot point).
func (l *Ledger) WriteSnapshot(w io.Writer) error {
	// Capture a consistent view under the lock, then stream without it:
	// the headers and version entries are copied, the cell-store instance
	// is immutable, and the content-addressed store never mutates an
	// object in place — so commits proceed while a (potentially huge)
	// snapshot drains to disk.
	l.mu.RLock()
	headers := append([]BlockHeader(nil), l.headers...)
	versions := make(map[string][]versionRef, len(l.versions))
	for ref, entries := range l.versions {
		versions[ref] = append([]versionRef(nil), entries...)
	}
	cells := l.cells
	l.mu.RUnlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}

	// Headers.
	writeUvarint(bw, uint64(len(headers)))
	for _, h := range headers {
		writeBytes(bw, h.Encode())
	}

	// Version index, sorted for determinism.
	refs := make([]string, 0, len(versions))
	for ref := range versions {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	writeUvarint(bw, uint64(len(refs)))
	for _, ref := range refs {
		writeBytes(bw, []byte(ref))
		entries := versions[ref]
		writeUvarint(bw, uint64(len(entries)))
		for _, e := range entries {
			writeUvarint(bw, e.version)
			bw.Write(e.object[:])
		}
	}

	// Objects: (domain, body) pairs. Collect transaction bodies, the
	// latest tree's nodes, and all chain objects.
	var objErr error
	emit := func(domain byte, body []byte) bool {
		if err := bw.WriteByte(1); err != nil {
			objErr = err
			return false
		}
		if err := bw.WriteByte(domain); err != nil {
			objErr = err
			return false
		}
		writeBytes(bw, body)
		return true
	}
	for _, h := range headers {
		body, err := l.store.Get(h.BodyHash)
		if err != nil {
			return fmt.Errorf("ledger: snapshot body %d: %w", h.Height, err)
		}
		if !emit(hashutil.DomainStmt, body) {
			return objErr
		}
	}
	if err := cells.Tree.WalkNodes(func(level int, body []byte) bool {
		domain := hashutil.DomainPOSLeaf
		if level > 0 {
			domain = hashutil.DomainPOSIndex
		}
		return emit(domain, body)
	}); err != nil {
		return err
	}
	if objErr != nil {
		return objErr
	}
	for _, ref := range refs {
		for _, e := range versions[ref] {
			body, err := l.store.Get(e.object)
			if err != nil {
				return fmt.Errorf("ledger: snapshot chain object: %w", err)
			}
			if !emit(hashutil.DomainCell, body) {
				return objErr
			}
		}
	}
	if err := bw.WriteByte(0); err != nil { // object stream terminator
		return err
	}
	return bw.Flush()
}

// LoadSnapshot reconstructs a ledger from a snapshot stream into store.
// Every object is re-inserted through content addressing and the block
// chain is revalidated, so a tampered snapshot is rejected.
func LoadSnapshot(store cas.Store, r io.Reader) (*Ledger, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return nil, errors.New("ledger: not a spitz snapshot")
	}

	headerCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	headers := make([]BlockHeader, 0, headerCount)
	var parent hashutil.Digest
	for i := uint64(0); i < headerCount; i++ {
		raw, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		h, err := DecodeHeader(raw)
		if err != nil {
			return nil, err
		}
		if h.Height != i || h.Parent != parent {
			return nil, errors.New("ledger: snapshot block chain broken")
		}
		parent = h.Hash()
		headers = append(headers, h)
	}

	refCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	versions := make(map[string][]versionRef, refCount)
	for i := uint64(0); i < refCount; i++ {
		ref, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		entries := make([]versionRef, 0, n)
		var prev uint64
		for j := uint64(0); j < n; j++ {
			ver, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if ver <= prev && j > 0 {
				return nil, errors.New("ledger: snapshot version index out of order")
			}
			prev = ver
			var d hashutil.Digest
			if _, err := io.ReadFull(br, d[:]); err != nil {
				return nil, err
			}
			entries = append(entries, versionRef{version: ver, object: d})
		}
		versions[string(ref)] = entries
	}

	// Objects: re-Put under their domains; content addressing recomputes
	// and thereby verifies every digest.
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if tag == 0 {
			break
		}
		domain, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		body, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		store.Put(domain, body)
	}

	// Revalidate reachability: version-index objects and the latest tree
	// must resolve in the restored store.
	l := &Ledger{store: store, headers: headers, versions: versions}
	for _, h := range headers {
		l.commit.Append(mtree.LeafHash(h.Encode()))
		if !store.Has(h.BodyHash) {
			return nil, errors.New("ledger: snapshot missing block body")
		}
	}
	for _, entries := range versions {
		for _, e := range entries {
			if !store.Has(e.object) {
				return nil, errors.New("ledger: snapshot missing chain object")
			}
		}
	}
	if len(headers) == 0 {
		l.cells = cellstore.Store{Tree: postree.Empty(store)}
		return l, nil
	}
	tree, err := postree.Load(store, headers[len(headers)-1].CellRoot)
	if err != nil {
		return nil, fmt.Errorf("ledger: snapshot cell tree: %w", err)
	}
	// A full count walk also proves every tree node is present.
	if _, err := tree.LiveBytes(); err != nil {
		return nil, fmt.Errorf("ledger: snapshot cell tree incomplete: %w", err)
	}
	l.cells = cellstore.Store{Tree: tree}
	return l, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeBytes(w *bufio.Writer, b []byte) {
	writeUvarint(w, uint64(len(b)))
	w.Write(b)
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, errors.New("ledger: snapshot field too large")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}
