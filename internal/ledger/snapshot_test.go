package ledger

import (
	"bytes"
	"testing"

	"spitz/internal/cas"
)

func snapshotRoundTrip(t *testing.T, l *Ledger) *Ledger {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := LoadSnapshot(cas.NewMemory(), &buf)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	return restored
}

func TestSnapshotRoundTripPreservesState(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 4)
	// Overwrite some cells so the version index is nonempty.
	if _, err := l.Commit(100, nil, cellsFor(100, 10, "b0")); err != nil {
		t.Fatal(err)
	}
	restored := snapshotRoundTrip(t, l)

	if restored.Digest() != l.Digest() {
		t.Fatalf("digest changed across snapshot: %+v vs %+v", restored.Digest(), l.Digest())
	}
	// Reads work.
	snap, _, ok := restored.Latest()
	if !ok {
		t.Fatal("restored ledger empty")
	}
	c, found, err := snap.GetHead("t", "c", []byte("b0-0003"))
	if err != nil || !found || string(c.Value) != "v100-3" {
		t.Fatalf("restored read = %+v %v %v", c, found, err)
	}
	// History (the version index) survives.
	hist, err := restored.History("t", "c", []byte("b0-0003"))
	if err != nil || len(hist) != 2 {
		t.Fatalf("restored history = %d versions, %v", len(hist), err)
	}
	// Proofs still verify against digests clients saved before the
	// snapshot.
	oldDigest := l.Digest()
	_, found, p, err := restored.ProveGetLatest(restored.Height()-1, "t", "c", []byte("b0-0003"))
	if err != nil || !found {
		t.Fatal("restored proof failed")
	}
	if err := p.Verify(oldDigest); err != nil {
		t.Fatalf("restored proof vs pre-snapshot digest: %v", err)
	}
}

func TestSnapshotThenContinueCommitting(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 2)
	restored := snapshotRoundTrip(t, l)
	old := restored.Digest()
	if _, err := restored.Commit(500, nil, cellsFor(500, 3, "post")); err != nil {
		t.Fatalf("commit after restore: %v", err)
	}
	cons, err := restored.ConsistencyProof(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Verify(old.Root, restored.Digest().Root); err != nil {
		t.Fatalf("post-restore history not consistent: %v", err)
	}
}

func TestSnapshotEmptyLedger(t *testing.T) {
	l := New(cas.NewMemory())
	restored := snapshotRoundTrip(t, l)
	if restored.Height() != 0 {
		t.Fatal("empty ledger restored with blocks")
	}
	if _, err := restored.Commit(1, nil, cellsFor(1, 2, "x")); err != nil {
		t.Fatalf("commit into restored empty ledger: %v", err)
	}
}

func TestSnapshotRejectsTampering(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one byte in a swept range of positions: every corruption must
	// be rejected or, at minimum, produce a ledger whose digest differs
	// (never a silently identical-yet-altered database).
	for _, off := range []int{len(snapshotMagic) + 3, len(raw) / 2, len(raw) - 10} {
		mutated := append([]byte(nil), raw...)
		mutated[off] ^= 0xFF
		restored, err := LoadSnapshot(cas.NewMemory(), bytes.NewReader(mutated))
		if err != nil {
			continue // rejected: good
		}
		if restored.Digest() == l.Digest() {
			// Loaded and digest matches: then the data must match too —
			// verify a proof end to end to be sure.
			_, _, p, perr := restored.ProveGetLatest(restored.Height()-1, "t", "c", []byte("b0-0001"))
			if perr != nil {
				continue
			}
			if err := p.Verify(l.Digest()); err != nil {
				t.Fatalf("offset %d: tampered snapshot produced digest-matching but unprovable ledger", off)
			}
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(cas.NewMemory(), bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted as snapshot")
	}
	if _, err := LoadSnapshot(cas.NewMemory(), bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSnapshotMissingObjectDetected(t *testing.T) {
	// Truncate the object stream: the loader must notice the missing
	// bodies rather than build a ledger with dangling references.
	l := New(cas.NewMemory())
	commitN(t, l, 2)
	var buf bytes.Buffer
	if err := l.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadSnapshot(cas.NewMemory(), bytes.NewReader(raw[:len(raw)*3/4])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	l := New(cas.NewMemory())
	commitN(t, l, 3)
	var a, b bytes.Buffer
	if err := l.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot encoding not deterministic")
	}
}
