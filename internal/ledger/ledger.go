// Package ledger implements Spitz's ledger (Section 5): "a sequence of
// hashed blocks. Each block tracks the modification of the records, query
// statements, metadata and the root node of the indexes on the entire
// dataset. The block and the data can be verified using the Merkle tree
// structure built on top of the entire ledger."
//
// Per Section 6.1, "each block in the ledger stores a historical index
// instance, naturally composing a version of the ledger, and the nodes
// between instances can be shared" — here the index instance is the
// POS-tree root of the whole cell store at that block, and sharing comes
// from the content-addressed store. The ledger is the unified index:
// queries traverse the block's POS-tree, and that same traversal produces
// the integrity proof.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/hashutil"
	"spitz/internal/mtree"
	"spitz/internal/postree"
)

// TxnSummary records one transaction inside a block, binding the statement
// text and the digest of its write set into the block hash.
type TxnSummary struct {
	ID        uint64
	Statement string
	WriteHash hashutil.Digest
}

// BlockHeader is the hashed block metadata.
type BlockHeader struct {
	Height    uint64
	Parent    hashutil.Digest // hash of the previous block (zero for genesis)
	Version   uint64          // commit version: cells in this block carry it
	CellRoot  hashutil.Digest // POS-tree root of the entire cell store
	CellCount uint64
	TxnCount  uint64
	BodyHash  hashutil.Digest // digest of the serialized transaction summaries
}

// Encode serializes the header canonically.
func (h BlockHeader) Encode() []byte {
	buf := make([]byte, 0, 8*4+hashutil.DigestSize*3)
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.Parent[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Version)
	buf = append(buf, h.CellRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.CellCount)
	buf = binary.BigEndian.AppendUint64(buf, h.TxnCount)
	buf = append(buf, h.BodyHash[:]...)
	return buf
}

// DecodeHeader parses an encoded header.
func DecodeHeader(data []byte) (BlockHeader, error) {
	const want = 8*4 + hashutil.DigestSize*3
	var h BlockHeader
	if len(data) != want {
		return h, fmt.Errorf("ledger: header length %d, want %d", len(data), want)
	}
	off := 0
	h.Height = binary.BigEndian.Uint64(data[off:])
	off += 8
	copy(h.Parent[:], data[off:])
	off += hashutil.DigestSize
	h.Version = binary.BigEndian.Uint64(data[off:])
	off += 8
	copy(h.CellRoot[:], data[off:])
	off += hashutil.DigestSize
	h.CellCount = binary.BigEndian.Uint64(data[off:])
	off += 8
	h.TxnCount = binary.BigEndian.Uint64(data[off:])
	off += 8
	copy(h.BodyHash[:], data[off:])
	return h, nil
}

// Hash returns the block hash.
func (h BlockHeader) Hash() hashutil.Digest {
	return hashutil.Sum(hashutil.DomainBlock, h.Encode())
}

func encodeBody(txns []TxnSummary) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(txns)))
	for _, t := range txns {
		buf = binary.AppendUvarint(buf, t.ID)
		buf = binary.AppendUvarint(buf, uint64(len(t.Statement)))
		buf = append(buf, t.Statement...)
		buf = append(buf, t.WriteHash[:]...)
	}
	return buf
}

// WriteSetHash digests a transaction's write set for its TxnSummary: the
// universal keys of the written cell versions, in order, streamed into one
// hash without materializing each key.
func WriteSetHash(cells []cellstore.Cell) hashutil.Digest {
	h := hashutil.NewStream(hashutil.DomainTxn)
	buf := make([]byte, 0, 128)
	for _, c := range cells {
		buf = buf[:0]
		buf = append(buf, cellstore.EncodeKey(cellstore.UniversalKey(c))...)
		h.Part(buf)
	}
	return h.Sum()
}

// Digest is what a verifying client stores locally: the ledger height and
// the root of the Merkle commitment over all block hashes up to it.
// Section 5.3: "clients can use the digest of the ledger to perform
// verification locally ... recalculate the digest with the received proof
// and compare it with the previous digest saved locally."
type Digest struct {
	Height uint64
	Root   hashutil.Digest
}

// Ledger is the block sequence plus the commitment tree and the live cell
// store snapshot. Safe for concurrent use; commits are serialized.
type Ledger struct {
	mu      sync.RWMutex
	store   cas.Store
	headers []BlockHeader
	commit  mtree.Tree
	cells   cellstore.Store

	// versions indexes demoted (superseded) cell versions by reference:
	// the auditor "keeps track of data changes" (Section 5). Ascending by
	// version; used for historical point lookups between block snapshots.
	versions map[string][]versionRef

	// pcache memoizes head point proofs for the current digest; Commit
	// invalidates it (see proofCache).
	pcache proofCache

	// demoLog/demoTail retain demoted-version entries for the durable
	// layer's VLOG (see EnableDemotionLog); disabled by default so purely
	// in-memory ledgers don't accumulate an unbounded tail.
	demoLog  bool
	demoTail []VersionEntry
}

type versionRef struct {
	version uint64
	object  hashutil.Digest
}

// New returns an empty ledger over the given object store.
func New(store cas.Store) *Ledger {
	return &Ledger{store: store,
		cells:    cellstore.Store{Tree: postree.Empty(store)},
		versions: make(map[string][]versionRef)}
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.headers))
}

// Digest returns the client-verifiable digest of the current ledger.
func (l *Ledger) Digest() Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.digestLocked()
}

func (l *Ledger) digestLocked() Digest {
	return Digest{Height: uint64(len(l.headers)), Root: l.commit.Root()}
}

// Head returns the latest block header; ok is false when empty.
func (l *Ledger) Head() (BlockHeader, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.headers) == 0 {
		return BlockHeader{}, false
	}
	return l.headers[len(l.headers)-1], true
}

// Header returns the block header at the given height (0-based).
func (l *Ledger) Header(height uint64) (BlockHeader, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height >= uint64(len(l.headers)) {
		return BlockHeader{}, fmt.Errorf("ledger: height %d beyond head %d", height, len(l.headers))
	}
	return l.headers[height], nil
}

// Snapshot returns a read view of the cell store as of the given block.
// This is the "historical index instance" stored in each block.
func (l *Ledger) Snapshot(height uint64) (cellstore.Store, error) {
	h, err := l.Header(height)
	if err != nil {
		return cellstore.Store{}, err
	}
	tree, err := postree.Load(l.store, h.CellRoot)
	if err != nil {
		return cellstore.Store{}, err
	}
	return cellstore.Store{Tree: tree}, nil
}

// Latest returns the current cell store snapshot and its block header.
// ok is false when the ledger is empty.
func (l *Ledger) Latest() (cellstore.Store, BlockHeader, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.headers) == 0 {
		return l.cells, BlockHeader{}, false
	}
	return l.cells, l.headers[len(l.headers)-1], true
}

// Commit appends a block containing the given transactions' cells. Cell
// versions must lie in (previous block version, version]: a snapshot read
// at a block's version then sees exactly the cells committed up to that
// block. Group commit batches several transactions (each with its own
// commit timestamp) into one block this way. It returns the new header.
func (l *Ledger) Commit(version uint64, txns []TxnSummary, cells []cellstore.Cell) (BlockHeader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prevVersion uint64
	if len(l.headers) > 0 {
		prevVersion = l.headers[len(l.headers)-1].Version
	}
	if version <= prevVersion {
		return BlockHeader{}, fmt.Errorf("ledger: version %d not above head version %d", version, prevVersion)
	}
	for i := range cells {
		if cells[i].Version <= prevVersion || cells[i].Version > version {
			return BlockHeader{}, fmt.Errorf("ledger: cell %d version %d outside block window (%d, %d]",
				i, cells[i].Version, prevVersion, version)
		}
	}
	next, demoted, err := l.cells.Apply(cells)
	if err != nil {
		return BlockHeader{}, err
	}
	for _, d := range demoted {
		l.insertVersionLocked(d.Ref, versionRef{version: d.Version, object: d.Object})
	}
	body := encodeBody(txns)
	bodyHash := l.store.Put(hashutil.DomainStmt, body)
	var parent hashutil.Digest
	if len(l.headers) > 0 {
		parent = l.headers[len(l.headers)-1].Hash()
	}
	h := BlockHeader{
		Height:    uint64(len(l.headers)),
		Parent:    parent,
		Version:   version,
		CellRoot:  next.Tree.Root(),
		CellCount: uint64(next.Tree.Count()),
		TxnCount:  uint64(len(txns)),
		BodyHash:  bodyHash,
	}
	l.store.Put(hashutil.DomainBlock, h.Encode())
	l.headers = append(l.headers, h)
	l.commit.Append(mtree.LeafHash(h.Encode()))
	l.cells = next
	// The head moved: every memoized proof was built for the previous
	// digest. Invalidation happens under the write lock, so no concurrent
	// prover can serve a stale entry against the new digest.
	l.pcache.invalidate()
	return h, nil
}

// Body returns the transaction summaries of a block.
func (l *Ledger) Body(height uint64) ([]TxnSummary, error) {
	h, err := l.Header(height)
	if err != nil {
		return nil, err
	}
	data, err := l.store.Get(h.BodyHash)
	if err != nil {
		return nil, err
	}
	return decodeBody(data)
}

func decodeBody(data []byte) ([]TxnSummary, error) {
	cnt, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("ledger: bad body count")
	}
	rest := data[k:]
	out := make([]TxnSummary, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		var t TxnSummary
		id, k1 := binary.Uvarint(rest)
		if k1 <= 0 {
			return nil, errors.New("ledger: bad txn id")
		}
		t.ID = id
		rest = rest[k1:]
		sl, k2 := binary.Uvarint(rest)
		if k2 <= 0 || uint64(len(rest)-k2) < sl+hashutil.DigestSize {
			return nil, errors.New("ledger: bad statement")
		}
		t.Statement = string(rest[k2 : k2+int(sl)])
		rest = rest[k2+int(sl):]
		copy(t.WriteHash[:], rest[:hashutil.DigestSize])
		rest = rest[hashutil.DigestSize:]
		out = append(out, t)
	}
	if len(rest) != 0 {
		return nil, errors.New("ledger: trailing body bytes")
	}
	return out, nil
}

// ConsistencyProof proves that the ledger at the client's saved digest is
// a prefix of the current ledger (no history rewrite). Clients call this
// when refreshing their digest.
func (l *Ledger) ConsistencyProof(old Digest) (mtree.ConsistencyProof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.commit.ConsistencyProof(int(old.Height))
}

// ProveConsistency returns the current digest together with the proof
// that it extends old, captured under one lock acquisition — under
// concurrent commits, a digest and a consistency proof sampled in two
// separate calls may straddle a new block and fail to match.
func (l *Ledger) ProveConsistency(old Digest) (Digest, mtree.ConsistencyProof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cons, err := l.commit.ConsistencyProof(int(old.Height))
	if err != nil {
		return Digest{}, mtree.ConsistencyProof{}, err
	}
	return l.digestLocked(), cons, nil
}

// ProveConsistencyPair returns the current digest together with
// consistency proofs for two older digests, all captured under one lock
// acquisition. Clients use it when a query proof arrived for a digest
// their trust has already moved past: one proof advances the trusted
// digest to the current state, the other shows the proof's digest is a
// genuine prefix of that same state — so the stale-but-honest proof can
// still be verified instead of being refetched forever under write
// churn.
func (l *Ledger) ProveConsistencyPair(a, b Digest) (Digest, mtree.ConsistencyProof, mtree.ConsistencyProof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	consA, err := l.commit.ConsistencyProof(int(a.Height))
	if err != nil {
		return Digest{}, mtree.ConsistencyProof{}, mtree.ConsistencyProof{}, err
	}
	consB, err := l.commit.ConsistencyProof(int(b.Height))
	if err != nil {
		return Digest{}, mtree.ConsistencyProof{}, mtree.ConsistencyProof{}, err
	}
	return l.digestLocked(), consA, consB, nil
}

// blockInclusion builds the inclusion proof for the block at height under
// the current commitment root. Callers hold at least the read lock.
func (l *Ledger) blockInclusion(height uint64) (mtree.InclusionProof, error) {
	return l.commit.InclusionProof(int(height))
}

// GetAsOf returns the newest version of a cell at or before asOf: the head
// when it qualifies, otherwise the newest demoted version from the
// auditor's version index. ok is false when the cell did not exist at
// asOf. Tombstones are returned with ok=true so callers can distinguish
// deletion from absence.
func (l *Ledger) GetAsOf(table, column string, pk []byte, asOf uint64) (cellstore.Cell, bool, error) {
	l.mu.RLock()
	cells := l.cells
	refs := l.versions[string(cellstore.CellPrefix(table, column, pk))]
	l.mu.RUnlock()
	head, found, err := cells.GetHead(table, column, pk)
	if err != nil {
		return cellstore.Cell{}, false, err
	}
	if found && head.Version <= asOf {
		return head, true, nil
	}
	// Binary search the demoted versions (ascending) for newest <= asOf.
	lo, hi := 0, len(refs)
	for lo < hi {
		mid := (lo + hi) / 2
		if refs[mid].version <= asOf {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return cellstore.Cell{}, false, nil
	}
	c, err := cellstore.LoadVersion(l.store, table, column, pk, refs[lo-1].object)
	if err != nil {
		return cellstore.Cell{}, false, err
	}
	return c, true, nil
}

// History returns every version of a cell, newest first: the head followed
// by all demoted versions.
func (l *Ledger) History(table, column string, pk []byte) ([]cellstore.Cell, error) {
	l.mu.RLock()
	cells := l.cells
	refs := append([]versionRef(nil), l.versions[string(cellstore.CellPrefix(table, column, pk))]...)
	l.mu.RUnlock()
	var out []cellstore.Cell
	if head, found, err := cells.GetHead(table, column, pk); err != nil {
		return nil, err
	} else if found {
		out = append(out, head)
	}
	for i := len(refs) - 1; i >= 0; i-- {
		c, err := cellstore.LoadVersion(l.store, table, column, pk, refs[i].object)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
