package ledger

import (
	"bytes"
	"fmt"
	"testing"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
)

// churnCommit writes the same keys at each version so every block demotes
// the previous head versions.
func churnCommit(t *testing.T, l *Ledger, blocks int) {
	t.Helper()
	for b := 0; b < blocks; b++ {
		v := uint64(b + 1)
		if _, err := l.Commit(v, []TxnSummary{{ID: v, Statement: "churn"}}, cellsFor(v, 8, "k")); err != nil {
			t.Fatalf("Commit(%d): %v", b, err)
		}
	}
}

func TestReopenRecoversDigestAndHistory(t *testing.T) {
	store := cas.NewMemory()
	l := New(store)
	l.EnableDemotionLog()
	churnCommit(t, l, 6)

	headers := make([]BlockHeader, 0, 6)
	for i := uint64(0); i < l.Height(); i++ {
		h, err := l.Header(i)
		if err != nil {
			t.Fatal(err)
		}
		headers = append(headers, h)
	}
	demos := l.PendingDemotions()
	if len(demos) == 0 {
		t.Fatal("churn produced no demotions")
	}

	r, err := Reopen(store, headers, demos)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if r.Digest() != l.Digest() {
		t.Fatalf("reopened digest %+v != original %+v", r.Digest(), l.Digest())
	}

	// Head reads and the auditor's version index must match the original.
	pk := []byte("k-0003")
	for asOf := uint64(1); asOf <= 6; asOf++ {
		want, wok, err := l.GetAsOf("t", "c", pk, asOf)
		if err != nil {
			t.Fatal(err)
		}
		got, gok, err := r.GetAsOf("t", "c", pk, asOf)
		if err != nil {
			t.Fatalf("reopened GetAsOf(%d): %v", asOf, err)
		}
		if wok != gok || !bytes.Equal(want.Value, got.Value) || want.Version != got.Version {
			t.Fatalf("GetAsOf(%d): got (%q,%d,%v), want (%q,%d,%v)",
				asOf, got.Value, got.Version, gok, want.Value, want.Version, wok)
		}
	}
	wantHist, err := l.History("t", "c", pk)
	if err != nil {
		t.Fatal(err)
	}
	gotHist, err := r.History("t", "c", pk)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history length %d, want %d", len(gotHist), len(wantHist))
	}

	// The reopened ledger keeps committing on top of the recovered head.
	if _, err := r.Commit(7, nil, cellsFor(7, 8, "k")); err != nil {
		t.Fatalf("Commit after reopen: %v", err)
	}
}

func TestReopenIdempotentUnderReplayedDemotions(t *testing.T) {
	store := cas.NewMemory()
	l := New(store)
	l.EnableDemotionLog()
	churnCommit(t, l, 4)
	headers := make([]BlockHeader, 0, 4)
	for i := uint64(0); i < l.Height(); i++ {
		h, _ := l.Header(i)
		headers = append(headers, h)
	}
	demos := l.PendingDemotions()

	// A crash between VLOG persist and manifest write replays blocks whose
	// demotions are already in the VLOG: duplicates must collapse.
	doubled := append(append([]VersionEntry(nil), demos...), demos...)
	r, err := Reopen(store, headers, doubled)
	if err != nil {
		t.Fatal(err)
	}
	pk := []byte("k-0001")
	hist, err := r.History("t", "c", pk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := l.History("t", "c", pk)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != len(want) {
		t.Fatalf("replayed history has %d versions, want %d", len(hist), len(want))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Version <= hist[i].Version {
			t.Fatalf("history not strictly descending at %d: %d then %d", i, hist[i-1].Version, hist[i].Version)
		}
	}
}

func TestReopenRejectsBrokenChain(t *testing.T) {
	store := cas.NewMemory()
	l := New(store)
	churnCommit(t, l, 3)
	var headers []BlockHeader
	for i := uint64(0); i < 3; i++ {
		h, _ := l.Header(i)
		headers = append(headers, h)
	}
	bad := append([]BlockHeader(nil), headers...)
	bad[2].Parent = bad[1].Parent
	if _, err := Reopen(store, bad, nil); err == nil {
		t.Fatal("Reopen accepted a broken parent chain")
	}
	bad = append([]BlockHeader(nil), headers...)
	bad[1].Height = 5
	if _, err := Reopen(store, bad, nil); err == nil {
		t.Fatal("Reopen accepted a wrong height")
	}
}

func TestClearDemotionsPartial(t *testing.T) {
	l := New(cas.NewMemory())
	l.EnableDemotionLog()
	churnCommit(t, l, 3)
	demos := l.PendingDemotions()
	if len(demos) < 2 {
		t.Fatalf("need at least 2 demotions, got %d", len(demos))
	}
	l.ClearDemotions(1)
	rest := l.PendingDemotions()
	if len(rest) != len(demos)-1 {
		t.Fatalf("after ClearDemotions(1): %d entries, want %d", len(rest), len(demos)-1)
	}
	if !bytes.Equal(rest[0].Ref, demos[1].Ref) || rest[0].Version != demos[1].Version {
		t.Fatal("ClearDemotions dropped the wrong entry")
	}
	l.ClearDemotions(len(rest) + 10)
	if got := l.PendingDemotions(); len(got) != 0 {
		t.Fatalf("over-clear left %d entries", len(got))
	}
}

// TestGroupCommitDemotionOrder pins the ordering fix: a single block that
// writes one cell at two versions demotes both the batch-internal older
// version and the previous head, and they can arrive out of order. The
// version index must stay ascending or GetAsOf's binary search misses.
func TestGroupCommitDemotionOrder(t *testing.T) {
	mk := func(v uint64, val string) cellstore.Cell {
		return cellstore.Cell{Table: "t", Column: "c", PK: []byte("pk"), Version: v, Value: []byte(val)}
	}
	l := New(cas.NewMemory())
	if _, err := l.Commit(1, nil, []cellstore.Cell{mk(1, "v1")}); err != nil {
		t.Fatal(err)
	}
	// One folded block carrying v3 then v2 for the same cell.
	if _, err := l.Commit(3, nil, []cellstore.Cell{mk(3, "v3"), mk(2, "v2")}); err != nil {
		t.Fatal(err)
	}
	for asOf := uint64(1); asOf <= 3; asOf++ {
		c, ok, err := l.GetAsOf("t", "c", []byte("pk"), asOf)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("GetAsOf(%d): not found", asOf)
		}
		if want := fmt.Sprintf("v%d", asOf); string(c.Value) != want {
			t.Fatalf("GetAsOf(%d) = %q, want %q", asOf, c.Value, want)
		}
	}
}
