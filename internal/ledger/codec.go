package ledger

// Compact binary encoding of the ledger's proof/digest types for the
// wire protocol's binary framing. BlockHeader reuses the canonical
// Encode/DecodeHeader layout (fixed 128 bytes) that also feeds the hash,
// so the wire can never carry a header that hashes differently than it
// decodes.

import (
	"spitz/internal/binenc"
	"spitz/internal/hashutil"
	"spitz/internal/mtree"
	"spitz/internal/postree"
)

// AppendDigest appends d's binary encoding.
func AppendDigest(dst []byte, d Digest) []byte {
	dst = binenc.AppendUvarint(dst, d.Height)
	return append(dst, d.Root[:]...)
}

// ReadDigest decodes a digest.
func ReadDigest(src []byte) (Digest, []byte, error) {
	var d Digest
	h, rest, err := binenc.ReadUvarint(src)
	if err != nil {
		return d, nil, err
	}
	if len(rest) < hashutil.DigestSize {
		return d, nil, binenc.ErrCorrupt
	}
	d.Height = h
	copy(d.Root[:], rest)
	return d, rest[hashutil.DigestSize:], nil
}

// AppendHeader appends h's canonical fixed-size encoding.
func AppendHeader(dst []byte, h BlockHeader) []byte {
	return append(dst, h.Encode()...)
}

const headerWireLen = 8*4 + hashutil.DigestSize*3

// ReadHeader decodes a block header.
func ReadHeader(src []byte) (BlockHeader, []byte, error) {
	if len(src) < headerWireLen {
		return BlockHeader{}, nil, binenc.ErrCorrupt
	}
	h, err := DecodeHeader(src[:headerWireLen])
	if err != nil {
		return BlockHeader{}, nil, binenc.ErrCorrupt
	}
	return h, src[headerWireLen:], nil
}

// AppendProof appends p's binary encoding. A leading presence byte
// records which of the optional cell proofs is attached (bit0 Point,
// bit1 Range).
func AppendProof(dst []byte, p *Proof) []byte {
	dst = AppendHeader(dst, p.Header)
	dst = mtree.AppendInclusionProof(dst, p.Inclusion)
	var present byte
	if p.Point != nil {
		present |= 1
	}
	if p.Range != nil {
		present |= 2
	}
	dst = append(dst, present)
	if p.Point != nil {
		dst = postree.AppendPointProof(dst, *p.Point)
	}
	if p.Range != nil {
		dst = postree.AppendRangeProof(dst, *p.Range)
	}
	return dst
}

// ReadProof decodes a proof.
func ReadProof(src []byte) (*Proof, []byte, error) {
	p := new(Proof)
	var err error
	if p.Header, src, err = ReadHeader(src); err != nil {
		return nil, nil, err
	}
	if p.Inclusion, src, err = mtree.ReadInclusionProof(src); err != nil {
		return nil, nil, err
	}
	if len(src) < 1 || src[0] > 3 {
		return nil, nil, binenc.ErrCorrupt
	}
	present := src[0]
	src = src[1:]
	if present&1 != 0 {
		var pt postree.PointProof
		if pt, src, err = postree.ReadPointProof(src); err != nil {
			return nil, nil, err
		}
		p.Point = &pt
	}
	if present&2 != 0 {
		var rp postree.RangeProof
		if rp, src, err = postree.ReadRangeProof(src); err != nil {
			return nil, nil, err
		}
		p.Range = &rp
	}
	return p, src, nil
}

// AppendBatchProof appends p's binary encoding.
func AppendBatchProof(dst []byte, p *BatchProof) []byte {
	dst = AppendHeader(dst, p.Header)
	dst = mtree.AppendInclusionProof(dst, p.Inclusion)
	if p.Points != nil {
		dst = append(dst, 1)
		dst = postree.AppendBatchProof(dst, *p.Points)
	} else {
		dst = append(dst, 0)
	}
	if p.Ranges == nil {
		return append(dst, 0)
	}
	dst = binenc.AppendUvarint(dst, uint64(len(p.Ranges))+1)
	for i := range p.Ranges {
		dst = postree.AppendRangeProof(dst, p.Ranges[i])
	}
	return dst
}

// ReadBatchProof decodes a batch proof.
func ReadBatchProof(src []byte) (*BatchProof, []byte, error) {
	p := new(BatchProof)
	var err error
	if p.Header, src, err = ReadHeader(src); err != nil {
		return nil, nil, err
	}
	if p.Inclusion, src, err = mtree.ReadInclusionProof(src); err != nil {
		return nil, nil, err
	}
	var hasPoints bool
	if hasPoints, src, err = binenc.ReadBool(src); err != nil {
		return nil, nil, err
	}
	if hasPoints {
		var bp postree.BatchProof
		if bp, src, err = postree.ReadBatchProof(src); err != nil {
			return nil, nil, err
		}
		p.Points = &bp
	}
	n, rest, err := binenc.ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return p, rest, nil
	}
	cnt, err := binenc.Count(n-1, rest, 3)
	if err != nil {
		return nil, nil, err
	}
	p.Ranges = make([]postree.RangeProof, cnt)
	for i := range p.Ranges {
		if p.Ranges[i], rest, err = postree.ReadRangeProof(rest); err != nil {
			return nil, nil, err
		}
	}
	return p, rest, nil
}

// AppendBatchQuery appends q's binary encoding.
func AppendBatchQuery(dst []byte, q BatchQuery) []byte {
	dst = binenc.AppendString(dst, q.Table)
	dst = binenc.AppendString(dst, q.Column)
	dst = binenc.AppendBytes(dst, q.PK)
	dst = binenc.AppendBytes(dst, q.PKHi)
	return binenc.AppendBool(dst, q.Range)
}

// ReadBatchQuery decodes a batch query.
func ReadBatchQuery(src []byte) (BatchQuery, []byte, error) {
	var q BatchQuery
	var err error
	if q.Table, src, err = binenc.ReadString(src); err != nil {
		return q, nil, err
	}
	if q.Column, src, err = binenc.ReadString(src); err != nil {
		return q, nil, err
	}
	if q.PK, src, err = binenc.ReadBytes(src); err != nil {
		return q, nil, err
	}
	if q.PKHi, src, err = binenc.ReadBytes(src); err != nil {
		return q, nil, err
	}
	q.Range, src, err = binenc.ReadBool(src)
	return q, src, err
}

// AppendBatchQueries appends a nil-preserving batch query list.
func AppendBatchQueries(dst []byte, qs []BatchQuery) []byte {
	if qs == nil {
		return append(dst, 0)
	}
	dst = binenc.AppendUvarint(dst, uint64(len(qs))+1)
	for i := range qs {
		dst = AppendBatchQuery(dst, qs[i])
	}
	return dst
}

// ReadBatchQueries decodes a batch query list.
func ReadBatchQueries(src []byte) ([]BatchQuery, []byte, error) {
	n, rest, err := binenc.ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	cnt, err := binenc.Count(n-1, rest, 5)
	if err != nil {
		return nil, nil, err
	}
	out := make([]BatchQuery, cnt)
	for i := range out {
		if out[i], rest, err = ReadBatchQuery(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// AppendClusterDigest appends d's binary encoding.
func AppendClusterDigest(dst []byte, d *ClusterDigest) []byte {
	dst = binenc.AppendUvarint(dst, uint64(len(d.Shards)))
	for i := range d.Shards {
		dst = AppendDigest(dst, d.Shards[i])
	}
	return append(dst, d.Root[:]...)
}

// ReadClusterDigest decodes a cluster digest.
func ReadClusterDigest(src []byte) (*ClusterDigest, []byte, error) {
	n, rest, err := binenc.ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	cnt, err := binenc.Count(n, rest, 1+hashutil.DigestSize)
	if err != nil {
		return nil, nil, err
	}
	d := new(ClusterDigest)
	if cnt > 0 {
		d.Shards = make([]Digest, cnt)
		for i := range d.Shards {
			if d.Shards[i], rest, err = ReadDigest(rest); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(rest) < hashutil.DigestSize {
		return nil, nil, binenc.ErrCorrupt
	}
	copy(d.Root[:], rest)
	return d, rest[hashutil.DigestSize:], nil
}
