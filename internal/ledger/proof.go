package ledger

import (
	"errors"
	"time"

	"spitz/internal/cellstore"
	"spitz/internal/mtree"
	"spitz/internal/obs"
	"spitz/internal/postree"
)

// mProofBuild times full (uncached) head proof constructions: POS-tree
// walk + point proof + block inclusion, excluding lock wait and gob.
var mProofBuild = obs.Default.Histogram("spitz_proof_build_ns")

// ErrProofInvalid is returned when a ledger proof fails verification.
var ErrProofInvalid = errors.New("ledger: proof verification failed")

// Proof is the integrity proof attached to a Spitz query result. It binds
// the result to a block (via the block's cell-tree root) and the block to
// the ledger digest the client saved (via the commitment Merkle tree).
// Exactly one of Point and Range is set, matching the query kind.
//
// The cell part is produced by the same index traversal that served the
// query — Spitz "can store the proofs of the results and the value of the
// target nodes in a unified index" (Section 6.2.1).
type Proof struct {
	Header    BlockHeader
	Inclusion mtree.InclusionProof
	Point     *postree.PointProof
	Range     *postree.RangeProof
}

// Verify checks the proof against a client-saved ledger digest. It
// confirms (1) the block is part of the ledger the digest commits to, and
// (2) the result is exactly what the block's index contains for the query.
func (p Proof) Verify(d Digest) error {
	if p.Header.Height >= d.Height {
		return ErrProofInvalid // block not covered by the digest
	}
	if p.Inclusion.TreeSize != int(d.Height) || p.Inclusion.Index != int(p.Header.Height) {
		return ErrProofInvalid
	}
	leaf := mtree.LeafHash(p.Header.Encode())
	if err := p.Inclusion.Verify(d.Root, leaf); err != nil {
		return ErrProofInvalid
	}
	switch {
	case p.Point != nil && p.Range == nil:
		if err := p.Point.Verify(p.Header.CellRoot); err != nil {
			return ErrProofInvalid
		}
	case p.Range != nil && p.Point == nil:
		if err := p.Range.Verify(p.Header.CellRoot); err != nil {
			return ErrProofInvalid
		}
	default:
		return ErrProofInvalid // must carry exactly one cell proof
	}
	return nil
}

// Cells decodes the proven cells (including tombstones, so callers can
// distinguish deletion from absence). Call only after Verify.
func (p Proof) Cells() ([]cellstore.Cell, error) {
	switch {
	case p.Point != nil:
		if !p.Point.Found {
			return nil, nil
		}
		table, column, pk, err := cellstore.DecodeRef(p.Point.Key)
		if err != nil {
			return nil, err
		}
		ver, value, tomb, err := cellstore.DecodeVersion(p.Point.Value)
		if err != nil {
			return nil, err
		}
		return []cellstore.Cell{{Table: table, Column: column, PK: pk,
			Version: ver, Value: value, Tombstone: tomb}}, nil
	case p.Range != nil:
		return cellstore.DecodeEntries(p.Range.Entries)
	}
	return nil, ErrProofInvalid
}

// ProveGetLatest serves a verified point read at the given block height:
// the cell's head version in that block's snapshot (necessarily at or
// before the block's version), with the unified proof.
func (l *Ledger) ProveGetLatest(height uint64, table, column string, pk []byte) (cellstore.Cell, bool, Proof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cell, ok, p, _, err := l.proveGetLocked(height, table, column, pk, nil)
	return cell, ok, p, err
}

// ProveGetHead serves a verified point read at the head block and returns
// the digest the proof verifies against. Digest and proof are captured
// under one lock acquisition, so a commit racing the read can never
// produce a proof that fails against the returned digest. ok is false
// (with a zero proof) when the ledger is empty.
func (l *Ledger) ProveGetHead(table, column string, pk []byte) (cellstore.Cell, bool, Proof, Digest, error) {
	return l.ProveGetHeadTraced(table, column, pk, nil)
}

// ProveGetHeadTraced is ProveGetHead with an optional sampled request
// trace: lock wait, snapshot resolution, point-proof construction and
// block inclusion each record a stage, so /tracez attributes a slow
// verified read to the stage that owns the time.
func (l *Ledger) ProveGetHeadTraced(table, column string, pk []byte, tr *obs.Trace) (cellstore.Cell, bool, Proof, Digest, error) {
	var lockStart time.Time
	if tr.Sampled() {
		lockStart = time.Now()
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	tr.Stage("ledger.lock", lockStart)
	d := l.digestLocked()
	if d.Height == 0 {
		return cellstore.Cell{}, false, Proof{}, d, nil
	}
	return l.proveGetLocked(d.Height-1, table, column, pk, tr)
}

func (l *Ledger) proveGetLocked(height uint64, table, column string, pk []byte, tr *obs.Trace) (cellstore.Cell, bool, Proof, Digest, error) {
	d := l.digestLocked()
	head := d.Height > 0 && height == d.Height-1
	var ref string
	if head {
		// Head reads memoize the complete proof per (digest, cell): the
		// digest was captured inside this read-locked section, so a hit
		// is guaranteed to have been built for exactly this head.
		ref = string(cellstore.CellPrefix(table, column, pk))
		var cacheStart time.Time
		if tr.Sampled() {
			cacheStart = time.Now()
		}
		if e, ok := l.pcache.get(d, ref); ok {
			tr.Stage("proof.cache_hit", cacheStart)
			pp := e.point
			return e.cell, e.ok, Proof{Header: e.hdr, Inclusion: e.inc, Point: &pp}, d, nil
		}
	}
	buildStart := time.Now()
	var snapStart time.Time
	if tr.Sampled() {
		snapStart = buildStart
	}
	h, snap, err := l.snapshotLocked(height)
	if err != nil {
		return cellstore.Cell{}, false, Proof{}, d, err
	}
	tr.Stage("ledger.snapshot", snapStart)
	var pointStart time.Time
	if tr.Sampled() {
		pointStart = time.Now()
	}
	cell, ok, pointProof, err := snap.ProveGetHead(table, column, pk)
	if err != nil {
		return cellstore.Cell{}, false, Proof{}, d, err
	}
	tr.Stage("proof.point", pointStart)
	var incStart time.Time
	if tr.Sampled() {
		incStart = time.Now()
	}
	inc, err := l.blockInclusion(height)
	if err != nil {
		return cellstore.Cell{}, false, Proof{}, d, err
	}
	tr.Stage("proof.inclusion", incStart)
	mProofBuild.ObserveSince(buildStart)
	if head {
		l.pcache.put(d, ref, cachedRead{cell: cell, ok: ok, point: pointProof, inc: inc, hdr: h})
	}
	return cell, ok, Proof{Header: h, Inclusion: inc, Point: &pointProof}, d, nil
}

// ProveRangePK serves a verified primary-key range scan at the given block
// height with a single unified proof covering the whole result.
func (l *Ledger) ProveRangePK(height uint64, table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, Proof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cells, p, _, err := l.proveRangeLocked(height, table, column, pkLo, pkHi)
	return cells, p, err
}

// ProveRangePKHead serves a verified range scan at the head block with the
// digest the proof verifies against, captured atomically (see
// ProveGetHead).
func (l *Ledger) ProveRangePKHead(table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, Proof, Digest, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d := l.digestLocked()
	if d.Height == 0 {
		return nil, Proof{}, d, nil
	}
	return l.proveRangeLocked(d.Height-1, table, column, pkLo, pkHi)
}

func (l *Ledger) proveRangeLocked(height uint64, table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, Proof, Digest, error) {
	d := l.digestLocked()
	h, snap, err := l.snapshotLocked(height)
	if err != nil {
		return nil, Proof{}, d, err
	}
	cells, rangeProof, err := snap.ProveRangePK(table, column, pkLo, pkHi)
	if err != nil {
		return nil, Proof{}, d, err
	}
	inc, err := l.blockInclusion(height)
	if err != nil {
		return nil, Proof{}, d, err
	}
	return cells, Proof{Header: h, Inclusion: inc, Range: &rangeProof}, d, nil
}

// ProveBlock returns a block header with its inclusion proof under the
// current digest. Clients verifying *writes* use it: after a commit they
// check that the new block is in the ledger and that its recorded write-set
// hash matches what they submitted — batch-level write verification
// (Section 5.3's deferred scheme).
func (l *Ledger) ProveBlock(height uint64) (BlockHeader, mtree.InclusionProof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height >= uint64(len(l.headers)) {
		return BlockHeader{}, mtree.InclusionProof{}, errors.New("ledger: height beyond head")
	}
	inc, err := l.blockInclusion(height)
	if err != nil {
		return BlockHeader{}, mtree.InclusionProof{}, err
	}
	return l.headers[height], inc, nil
}

// snapshotLocked resolves a height to its header and cell store view. The
// latest height reuses the live snapshot without reloading.
func (l *Ledger) snapshotLocked(height uint64) (BlockHeader, cellstore.Store, error) {
	if height >= uint64(len(l.headers)) {
		return BlockHeader{}, cellstore.Store{}, errors.New("ledger: height beyond head")
	}
	h := l.headers[height]
	if height == uint64(len(l.headers))-1 {
		return h, l.cells, nil
	}
	// Historical instances share the live tree's node cache, so proofs at
	// older heights reuse interior fragments across reads.
	tree, err := l.cells.Tree.At(h.CellRoot)
	if err != nil {
		return BlockHeader{}, cellstore.Store{}, err
	}
	return h, cellstore.Store{Tree: tree}, nil
}

// GetHeadAttested serves the optimistic fast path of a deferred-audit
// read: the cell's head version together with the digest it was read at,
// captured under one lock acquisition — and nothing else. No proof is
// constructed; the client enqueues a receipt and later verifies a whole
// batch of them against this digest with one ProveBatch round trip.
// ok is false when the cell is absent (the digest still attests the
// ledger state the absence was observed at).
func (l *Ledger) GetHeadAttested(table, column string, pk []byte) (cellstore.Cell, bool, Digest, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d := l.digestLocked()
	if d.Height == 0 {
		return cellstore.Cell{}, false, d, nil
	}
	c, ok, err := l.cells.GetHead(table, column, pk)
	return c, ok, d, err
}

// RangePKHeadAttested is the range form of GetHeadAttested: the live head
// cells in [pkLo, pkHi) plus the digest they were read at, atomically,
// without a proof.
func (l *Ledger) RangePKHeadAttested(table, column string, pkLo, pkHi []byte) ([]cellstore.Cell, Digest, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d := l.digestLocked()
	if d.Height == 0 {
		return nil, d, nil
	}
	cells, err := l.cells.RangePK(table, column, pkLo, pkHi, l.headers[len(l.headers)-1].Version)
	return cells, d, err
}
