// Package wal implements a segmented write-ahead log: an append-only
// sequence of CRC32C-framed records split across rotating segment files.
// It is the durability primitive under internal/durable — every committed
// ledger block is framed into the log before the commit is acknowledged,
// so a crash can lose at most the tail the configured sync policy allows.
//
// Concurrency follows the classic group-commit design: appends serialize
// only for the in-memory frame write; the expensive fsync is performed by
// one "leader" on behalf of every record appended before it started, so a
// burst of concurrent commits shares a single disk flush.
//
// On open the log scans itself forward and truncates at the first torn or
// corrupt frame of the final segment (an interrupted write), while
// corruption in any earlier segment — which cannot be produced by a crash,
// only by tampering or disk rot — is a hard error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spitz/internal/obs"
)

// WAL metrics, aggregated over every open log in the process. Append
// time covers frame encode + buffered write under the log lock; fsync
// time is the device sync a group-commit leader pays (followers ride it
// for free — fsyncs_total counts actual device syncs, not waiters).
var (
	mWalAppends     = obs.Default.Counter("spitz_wal_appends_total")
	mWalAppendBytes = obs.Default.Counter("spitz_wal_append_bytes_total")
	mWalAppendNs    = obs.Default.Histogram("spitz_wal_append_ns")
	mWalFsyncs      = obs.Default.Counter("spitz_wal_fsyncs_total")
	mWalFsyncNs     = obs.Default.Histogram("spitz_wal_fsync_ns")
	mWalRotations   = obs.Default.Counter("spitz_wal_rotations_total")
)

// SyncPolicy controls when appends become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging every append (group commit:
	// one fsync covers all appends queued behind the leader).
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes to the OS on every append and fsyncs on a
	// background timer; a crash loses at most one interval of records.
	SyncInterval
	// SyncNever flushes to the OS on every append but never fsyncs;
	// durability is left entirely to the kernel's writeback.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the flag spelling of a sync policy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// Options configures a Log.
type Options struct {
	// Policy selects when appends are made durable (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 50ms).
	Interval time.Duration
	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes (default 64 MiB).
	SegmentSize int64
}

const (
	frameHeader       = 8 // uint32 payload length + uint32 CRC32C
	defaultSegment    = 64 << 20
	defaultInterval   = 50 * time.Millisecond
	maxRecordSize     = 1 << 30
	segmentNameFormat = "%020d.wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC covers the length prefix as well as the payload, so a zeroed
// (preallocated but unwritten) region can never validate as an empty
// record.
func frameCRC(length uint32, payload []byte) uint32 {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], length)
	c := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(c, castagnoli, payload)
}

// Sentinel errors.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt is returned when a non-final segment contains a bad
	// frame — damage no crash can explain.
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrPruned is returned by Follow when the requested sequence number
	// was pruned before the reader attached; the caller must bootstrap
	// from a snapshot instead of the log.
	ErrPruned = errors.New("wal: records pruned")
	// ErrStopped is returned by Reader.Next when its stop channel closes.
	ErrStopped = errors.New("wal: follow stopped")
)

type segment struct {
	start uint64 // sequence number of the segment's first record
	path  string
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards all mutable state below.
	mu       sync.Mutex
	f        *os.File
	segments []segment // ordered; last is the active segment
	segBytes int64     // bytes written to the active segment
	nextSeq  uint64    // sequence number of the next record
	appended uint64    // highest sequence number written to the OS
	synced   uint64    // highest sequence number known durable
	syncErr  error     // sticky fatal sync error
	closed   bool

	// syncMu elects the group-commit leader: held across each fsync so
	// exactly one is in flight, and always acquired before mu.
	syncMu sync.Mutex

	// readers are the attached followers (Follow). Each one's next
	// undelivered sequence number is a floor below which PruneTo will not
	// delete segments, so an attached follower can never lose its place.
	readers map[*Reader]struct{}
	// tailc is closed and replaced whenever the shippable frontier
	// advances; blocked readers wait on it.
	tailc chan struct{}

	stop     chan struct{} // closes the interval syncer
	done     chan struct{}
	stopOnce sync.Once
}

// Open opens (creating if needed) the log in dir, scans it forward
// validating every frame, and truncates a torn tail in the final segment.
// The next Append continues the sequence after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegment
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1,
		readers: make(map[*Reader]struct{}), tailc: make(chan struct{})}
	if len(segs) > 0 {
		// Segments before the first were pruned by past checkpoints; the
		// sequence resumes at whatever the oldest survivor starts with.
		l.nextSeq = segs[0].start
	}
	for i, s := range segs {
		last := i == len(segs)-1
		count, goodBytes, err := scanSegment(s.path, last)
		if err != nil {
			return nil, err
		}
		if last {
			if err := os.Truncate(s.path, goodBytes); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.segBytes = goodBytes
		}
		if s.start != l.nextSeq {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrCorrupt, filepath.Base(s.path), s.start, l.nextSeq)
		}
		l.nextSeq += uint64(count)
	}
	l.segments = segs
	l.appended = l.nextSeq - 1
	l.synced = l.appended
	if len(segs) == 0 {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var start uint64
		if _, err := fmt.Sscanf(e.Name(), segmentNameFormat, &start); err != nil {
			continue
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// scanSegment validates path frame by frame. It returns the number of
// intact records and the byte offset just past the last one. A bad frame
// is tolerated (scan stops) only when last is true.
func scanSegment(path string, last bool) (count int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var hdr [frameHeader]byte
	var payload []byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return count, goodBytes, nil // clean frame boundary
		}
		if err != nil { // short header: torn write
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: short frame header", ErrCorrupt, filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordSize {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: absurd frame length %d", ErrCorrupt, filepath.Base(path), length)
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: short frame payload", ErrCorrupt, filepath.Base(path))
		}
		if frameCRC(length, payload) != crc {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: frame checksum mismatch", ErrCorrupt, filepath.Base(path))
		}
		count++
		goodBytes += int64(frameHeader) + int64(length)
	}
}

// Append writes payload as one record and blocks until it is durable
// under the configured policy. It returns the record's sequence number.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, wait, err := l.AppendAsync(payload)
	if err != nil {
		return 0, err
	}
	return seq, wait()
}

// AppendAsync writes payload as one record without waiting for
// durability. The returned wait function blocks until the record is
// durable under the configured policy; callers may release their own
// locks before invoking it so that concurrent commits share one fsync.
func (l *Log) AppendAsync(payload []byte) (uint64, func() error, error) {
	if len(payload) > maxRecordSize {
		return 0, nil, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	appendStart := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, ErrClosed
	}
	// A prior write or fsync failure may have left a torn frame at the
	// tail; appending behind it would put acknowledged records where the
	// next recovery truncates. The error is sticky: the log is done.
	if err := l.syncErr; err != nil {
		l.mu.Unlock()
		return 0, nil, err
	}
	if l.segBytes >= l.opts.SegmentSize {
		l.mu.Unlock()
		if err := l.rotate(); err != nil {
			return 0, nil, err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, nil, ErrClosed
		}
	}
	seq := l.nextSeq
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], frameCRC(uint32(len(payload)), payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.syncErr = err
		l.mu.Unlock()
		return 0, nil, err
	}
	if _, err := l.f.Write(payload); err != nil {
		l.syncErr = err
		l.mu.Unlock()
		return 0, nil, err
	}
	l.nextSeq++
	l.appended = seq
	l.segBytes += int64(frameHeader) + int64(len(payload))
	policy := l.opts.Policy
	l.broadcastLocked()
	l.mu.Unlock()
	mWalAppends.Inc()
	mWalAppendBytes.Add(uint64(frameHeader) + uint64(len(payload)))
	mWalAppendNs.ObserveSince(appendStart)

	if policy == SyncAlways {
		return seq, func() error { return l.syncTo(seq) }, nil
	}
	// SyncInterval/SyncNever acknowledge immediately, but a background
	// fsync failure must still reach the commit path: surface the sticky
	// error instead of silently acknowledging undurable commits forever.
	return seq, func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.syncErr
	}, nil
}

// syncTo makes every record up to seq durable, electing one fsync leader
// for all concurrent waiters (group commit).
func (l *Log) syncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if err := l.syncErr; err != nil {
		l.mu.Unlock()
		return err
	}
	if l.synced >= seq {
		l.mu.Unlock()
		return nil // a previous leader's fsync covered this record
	}
	target := l.appended
	f := l.f
	l.mu.Unlock()
	fsyncStart := time.Now()
	err := f.Sync()
	mWalFsyncs.Inc()
	mWalFsyncNs.ObserveSince(fsyncStart)
	l.mu.Lock()
	if err != nil {
		l.syncErr = err
	} else if target > l.synced {
		l.synced = target
		l.broadcastLocked()
	}
	l.mu.Unlock()
	return err
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.appended
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if seq == 0 {
		return nil
	}
	return l.syncTo(seq)
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync() // sticky error resurfaces on the commit path
		case <-l.stop:
			return
		}
	}
}

// rotate seals the active segment (flush, fsync, close) and starts a new
// one named after the next sequence number. syncMu is taken first so no
// group-commit leader is fsyncing the file being swapped out.
func (l *Log) rotate() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segBytes < l.opts.SegmentSize {
		return nil // another appender rotated first
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.synced = l.appended
	l.broadcastLocked()
	mWalRotations.Inc()
	return l.createSegmentLocked()
}

// broadcastLocked wakes every follower blocked at the tail. Caller holds
// mu.
func (l *Log) broadcastLocked() {
	close(l.tailc)
	l.tailc = make(chan struct{})
}

// shippableLocked is the highest sequence number followers may be given:
// under SyncAlways only durable records ship (a follower can never hold a
// record the primary may lose in a crash); under the weaker policies —
// where acknowledged commits can be lost anyway — appended records ship
// immediately. Caller holds mu.
func (l *Log) shippableLocked() uint64 {
	if l.opts.Policy == SyncAlways {
		return l.synced
	}
	return l.appended
}

// createSegmentLocked opens a fresh segment for nextSeq and fsyncs the
// directory so the file's existence is itself durable. Caller holds mu.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf(segmentNameFormat, l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segments = append(l.segments, segment{start: l.nextSeq, path: path})
	l.segBytes = 0
	return nil
}

// NextSeq returns the sequence number the next Append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Replay streams every record in sequence order to fn. It reads the
// segment files directly and is intended for recovery, before the first
// Append; fn returning an error aborts the replay.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, s := range segs {
		if err := replaySegment(s, i == len(segs)-1, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s segment, last bool, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	seq := s.start
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || last {
				return nil
			}
			return fmt.Errorf("%w: %s: short frame header", ErrCorrupt, filepath.Base(s.path))
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordSize {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: absurd frame length", ErrCorrupt, filepath.Base(s.path))
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: short frame payload", ErrCorrupt, filepath.Base(s.path))
		}
		if frameCRC(length, payload) != crc {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: frame checksum mismatch", ErrCorrupt, filepath.Base(s.path))
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
		seq++
	}
}

// PruneTo deletes whole segments every record of which has sequence
// number below keepSeq. The active segment is never deleted. Checkpoint
// logic calls this after a snapshot makes the prefix redundant.
func (l *Log) PruneTo(keepSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Attached followers hold the log: never prune a record a reader has
	// yet to deliver, or a mid-stream follower would be forced back to a
	// full snapshot transfer.
	for r := range l.readers {
		if r.next < keepSeq {
			keepSeq = r.next
		}
	}
	kept := l.segments[:0]
	var firstErr error
	for i, s := range l.segments {
		// A segment's records end where the next segment starts; only a
		// fully superseded, non-active segment may go.
		if i+1 < len(l.segments) && l.segments[i+1].start <= keepSeq {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		kept = append(kept, s)
	}
	removed := len(l.segments) - len(kept)
	l.segments = append([]segment(nil), kept...)
	if firstErr != nil {
		return firstErr
	}
	if removed > 0 {
		return SyncDir(l.dir)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Appends after Close return
// ErrClosed.
func (l *Log) Close() error {
	if l.stop != nil {
		l.stopOnce.Do(func() {
			close(l.stop)
			<-l.done
		})
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	l.broadcastLocked() // wake followers so they observe the close
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Followers: tail-follow readers with retention holds (replication).

// Info is a point-in-time summary of the log's retained span.
type Info struct {
	OldestSeq     uint64 // sequence number of the oldest retained record
	NextSeq       uint64 // sequence number the next Append will receive
	AppendedSeq   uint64 // highest sequence number written to the OS
	SyncedSeq     uint64 // highest sequence number known durable
	Segments      int    // retained segment files
	RetainedBytes int64  // bytes across retained segment files
}

// Info returns the log's retained span and durability frontier.
func (l *Log) Info() Info {
	l.mu.Lock()
	info := Info{
		OldestSeq:   l.segments[0].start,
		NextSeq:     l.nextSeq,
		AppendedSeq: l.appended,
		SyncedSeq:   l.synced,
		Segments:    len(l.segments),
	}
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for _, s := range segs {
		if st, err := os.Stat(s.path); err == nil {
			info.RetainedBytes += st.Size()
		}
	}
	return info
}

// OldestSeq returns the sequence number of the oldest retained record
// (== NextSeq when the retained log is empty).
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].start
}

// Follow returns a Reader that yields records in sequence order starting
// at from, blocking at the shippable frontier until more arrive. While
// the reader is open, PruneTo retains every record from the reader's
// position onward. Records pruned before Follow is called are gone for
// good: Follow reports ErrPruned and the caller must bootstrap from a
// snapshot. from may be at most NextSeq (following the future tail).
func (l *Log) Follow(from uint64) (*Reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if oldest := l.segments[0].start; from < oldest {
		return nil, fmt.Errorf("%w: follow from %d, oldest retained is %d", ErrPruned, from, oldest)
	}
	if from > l.nextSeq {
		return nil, fmt.Errorf("wal: follow from %d beyond next sequence %d", from, l.nextSeq)
	}
	r := &Reader{l: l, next: from, closed: make(chan struct{})}
	l.readers[r] = struct{}{}
	return r, nil
}

// Reader follows the log from a given sequence number (see Log.Follow).
// Next must be called from one goroutine at a time; Close may race it.
type Reader struct {
	l *Log
	// next is the next sequence number to deliver. Guarded by l.mu: it is
	// the reader's prune floor, read by PruneTo.
	next uint64
	// fmu guards the file position (f, segStart) against a Close racing
	// Next mid-read.
	fmu       sync.Mutex
	segStart  uint64 // start seq of the segment f reads from
	f         *os.File
	closed    chan struct{}
	closeOnce sync.Once
}

// Next returns the next record once it is shippable under the log's sync
// policy (durable under SyncAlways, appended otherwise), blocking until
// then. Closing stop returns ErrStopped; closing the reader or the log
// returns ErrClosed. A nil stop never fires.
func (r *Reader) Next(stop <-chan struct{}) (seq uint64, payload []byte, err error) {
	l := r.l
	for {
		l.mu.Lock()
		select {
		case <-r.closed:
			l.mu.Unlock()
			return 0, nil, ErrClosed
		default:
		}
		if l.closed {
			l.mu.Unlock()
			return 0, nil, ErrClosed
		}
		next := r.next
		if next <= l.shippableLocked() {
			// Locate the segment holding next: the last one starting at or
			// below it.
			idx := sort.Search(len(l.segments), func(i int) bool { return l.segments[i].start > next }) - 1
			seg := l.segments[idx]
			l.mu.Unlock()
			r.fmu.Lock()
			select {
			case <-r.closed:
				// A Close that won the race already released the file;
				// repositioning here would leak a fresh descriptor.
				r.fmu.Unlock()
				return 0, nil, ErrClosed
			default:
			}
			if r.f == nil || seg.start != r.segStart {
				if err := r.position(seg); err != nil {
					r.fmu.Unlock()
					return 0, nil, err
				}
			}
			payload, err := readFrame(r.f)
			r.fmu.Unlock()
			if err != nil {
				select {
				case <-r.closed:
					return 0, nil, ErrClosed
				default:
				}
				// Frames at or below the shippable frontier are fully
				// written and validated on the write path; failing to read
				// one back is damage, not a race.
				return 0, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(seg.path), err)
			}
			l.mu.Lock()
			r.next = next + 1
			l.mu.Unlock()
			return next, payload, nil
		}
		ch := l.tailc
		l.mu.Unlock()
		select {
		case <-ch:
		case <-r.closed:
			return 0, nil, ErrClosed
		case <-stop:
			return 0, nil, ErrStopped
		}
	}
}

// position opens the segment and skips forward to the reader's next
// record (needed when attaching mid-segment or crossing a rotation).
// Caller holds r.fmu.
func (r *Reader) position(seg segment) error {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	for skip := r.next - seg.start; skip > 0; skip-- {
		if _, err := readFrame(f); err != nil {
			f.Close()
			return fmt.Errorf("%w: %s: skipping to %d: %v", ErrCorrupt, filepath.Base(seg.path), r.next, err)
		}
	}
	r.f = f
	r.segStart = seg.start
	return nil
}

// SkipTo advances the reader so the next delivered record has sequence
// number at least seq (a no-op when already past it), releasing the
// retention hold on everything below. Callers use it when a snapshot
// hand-off makes the log prefix redundant. Must not race Next; intended
// before streaming starts.
func (r *Reader) SkipTo(seq uint64) {
	r.l.mu.Lock()
	moved := seq > r.next
	if moved {
		r.next = seq
	}
	r.l.mu.Unlock()
	if moved {
		r.fmu.Lock()
		if r.f != nil {
			// Drop the position so the next read re-locates its segment.
			r.f.Close()
			r.f = nil
			r.segStart = 0
		}
		r.fmu.Unlock()
	}
}

// Close detaches the reader, releasing its retention hold.
func (r *Reader) Close() error {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.l.mu.Lock()
		delete(r.l.readers, r)
		r.l.mu.Unlock()
		r.fmu.Lock()
		if r.f != nil {
			r.f.Close()
			r.f = nil
		}
		r.fmu.Unlock()
	})
	return nil
}

// readFrame reads and validates one frame at f's current offset.
func readFrame(f *os.File) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if length > maxRecordSize {
		return nil, errors.New("absurd frame length")
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, err
	}
	if frameCRC(length, payload) != crc {
		return nil, errors.New("frame checksum mismatch")
	}
	return payload, nil
}

// SyncDir fsyncs a directory so metadata changes inside it (created,
// renamed or removed files) are durable. Shared by the log and by
// internal/durable's checkpoint machinery.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
