// Package wal implements a segmented write-ahead log: an append-only
// sequence of CRC32C-framed records split across rotating segment files.
// It is the durability primitive under internal/durable — every committed
// ledger block is framed into the log before the commit is acknowledged,
// so a crash can lose at most the tail the configured sync policy allows.
//
// Concurrency follows the classic group-commit design: appends serialize
// only for the in-memory frame write; the expensive fsync is performed by
// one "leader" on behalf of every record appended before it started, so a
// burst of concurrent commits shares a single disk flush.
//
// On open the log scans itself forward and truncates at the first torn or
// corrupt frame of the final segment (an interrupted write), while
// corruption in any earlier segment — which cannot be produced by a crash,
// only by tampering or disk rot — is a hard error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy controls when appends become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging every append (group commit:
	// one fsync covers all appends queued behind the leader).
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes to the OS on every append and fsyncs on a
	// background timer; a crash loses at most one interval of records.
	SyncInterval
	// SyncNever flushes to the OS on every append but never fsyncs;
	// durability is left entirely to the kernel's writeback.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the flag spelling of a sync policy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// Options configures a Log.
type Options struct {
	// Policy selects when appends are made durable (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 50ms).
	Interval time.Duration
	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes (default 64 MiB).
	SegmentSize int64
}

const (
	frameHeader       = 8 // uint32 payload length + uint32 CRC32C
	defaultSegment    = 64 << 20
	defaultInterval   = 50 * time.Millisecond
	maxRecordSize     = 1 << 30
	segmentNameFormat = "%020d.wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC covers the length prefix as well as the payload, so a zeroed
// (preallocated but unwritten) region can never validate as an empty
// record.
func frameCRC(length uint32, payload []byte) uint32 {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], length)
	c := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(c, castagnoli, payload)
}

// Sentinel errors.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt is returned when a non-final segment contains a bad
	// frame — damage no crash can explain.
	ErrCorrupt = errors.New("wal: corrupt segment")
)

type segment struct {
	start uint64 // sequence number of the segment's first record
	path  string
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards all mutable state below.
	mu       sync.Mutex
	f        *os.File
	segments []segment // ordered; last is the active segment
	segBytes int64     // bytes written to the active segment
	nextSeq  uint64    // sequence number of the next record
	appended uint64    // highest sequence number written to the OS
	synced   uint64    // highest sequence number known durable
	syncErr  error     // sticky fatal sync error
	closed   bool

	// syncMu elects the group-commit leader: held across each fsync so
	// exactly one is in flight, and always acquired before mu.
	syncMu sync.Mutex

	stop     chan struct{} // closes the interval syncer
	done     chan struct{}
	stopOnce sync.Once
}

// Open opens (creating if needed) the log in dir, scans it forward
// validating every frame, and truncates a torn tail in the final segment.
// The next Append continues the sequence after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegment
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	if len(segs) > 0 {
		// Segments before the first were pruned by past checkpoints; the
		// sequence resumes at whatever the oldest survivor starts with.
		l.nextSeq = segs[0].start
	}
	for i, s := range segs {
		last := i == len(segs)-1
		count, goodBytes, err := scanSegment(s.path, last)
		if err != nil {
			return nil, err
		}
		if last {
			if err := os.Truncate(s.path, goodBytes); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.segBytes = goodBytes
		}
		if s.start != l.nextSeq {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrCorrupt, filepath.Base(s.path), s.start, l.nextSeq)
		}
		l.nextSeq += uint64(count)
	}
	l.segments = segs
	l.appended = l.nextSeq - 1
	l.synced = l.appended
	if len(segs) == 0 {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var start uint64
		if _, err := fmt.Sscanf(e.Name(), segmentNameFormat, &start); err != nil {
			continue
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// scanSegment validates path frame by frame. It returns the number of
// intact records and the byte offset just past the last one. A bad frame
// is tolerated (scan stops) only when last is true.
func scanSegment(path string, last bool) (count int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var hdr [frameHeader]byte
	var payload []byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return count, goodBytes, nil // clean frame boundary
		}
		if err != nil { // short header: torn write
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: short frame header", ErrCorrupt, filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordSize {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: absurd frame length %d", ErrCorrupt, filepath.Base(path), length)
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: short frame payload", ErrCorrupt, filepath.Base(path))
		}
		if frameCRC(length, payload) != crc {
			if last {
				return count, goodBytes, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: frame checksum mismatch", ErrCorrupt, filepath.Base(path))
		}
		count++
		goodBytes += int64(frameHeader) + int64(length)
	}
}

// Append writes payload as one record and blocks until it is durable
// under the configured policy. It returns the record's sequence number.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, wait, err := l.AppendAsync(payload)
	if err != nil {
		return 0, err
	}
	return seq, wait()
}

// AppendAsync writes payload as one record without waiting for
// durability. The returned wait function blocks until the record is
// durable under the configured policy; callers may release their own
// locks before invoking it so that concurrent commits share one fsync.
func (l *Log) AppendAsync(payload []byte) (uint64, func() error, error) {
	if len(payload) > maxRecordSize {
		return 0, nil, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, ErrClosed
	}
	// A prior write or fsync failure may have left a torn frame at the
	// tail; appending behind it would put acknowledged records where the
	// next recovery truncates. The error is sticky: the log is done.
	if err := l.syncErr; err != nil {
		l.mu.Unlock()
		return 0, nil, err
	}
	if l.segBytes >= l.opts.SegmentSize {
		l.mu.Unlock()
		if err := l.rotate(); err != nil {
			return 0, nil, err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, nil, ErrClosed
		}
	}
	seq := l.nextSeq
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], frameCRC(uint32(len(payload)), payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.syncErr = err
		l.mu.Unlock()
		return 0, nil, err
	}
	if _, err := l.f.Write(payload); err != nil {
		l.syncErr = err
		l.mu.Unlock()
		return 0, nil, err
	}
	l.nextSeq++
	l.appended = seq
	l.segBytes += int64(frameHeader) + int64(len(payload))
	policy := l.opts.Policy
	l.mu.Unlock()

	if policy == SyncAlways {
		return seq, func() error { return l.syncTo(seq) }, nil
	}
	// SyncInterval/SyncNever acknowledge immediately, but a background
	// fsync failure must still reach the commit path: surface the sticky
	// error instead of silently acknowledging undurable commits forever.
	return seq, func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.syncErr
	}, nil
}

// syncTo makes every record up to seq durable, electing one fsync leader
// for all concurrent waiters (group commit).
func (l *Log) syncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if err := l.syncErr; err != nil {
		l.mu.Unlock()
		return err
	}
	if l.synced >= seq {
		l.mu.Unlock()
		return nil // a previous leader's fsync covered this record
	}
	target := l.appended
	f := l.f
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	if err != nil {
		l.syncErr = err
	} else if target > l.synced {
		l.synced = target
	}
	l.mu.Unlock()
	return err
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.appended
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if seq == 0 {
		return nil
	}
	return l.syncTo(seq)
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync() // sticky error resurfaces on the commit path
		case <-l.stop:
			return
		}
	}
}

// rotate seals the active segment (flush, fsync, close) and starts a new
// one named after the next sequence number. syncMu is taken first so no
// group-commit leader is fsyncing the file being swapped out.
func (l *Log) rotate() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segBytes < l.opts.SegmentSize {
		return nil // another appender rotated first
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.synced = l.appended
	return l.createSegmentLocked()
}

// createSegmentLocked opens a fresh segment for nextSeq and fsyncs the
// directory so the file's existence is itself durable. Caller holds mu.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf(segmentNameFormat, l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segments = append(l.segments, segment{start: l.nextSeq, path: path})
	l.segBytes = 0
	return nil
}

// NextSeq returns the sequence number the next Append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Replay streams every record in sequence order to fn. It reads the
// segment files directly and is intended for recovery, before the first
// Append; fn returning an error aborts the replay.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, s := range segs {
		if err := replaySegment(s, i == len(segs)-1, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s segment, last bool, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	seq := s.start
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || last {
				return nil
			}
			return fmt.Errorf("%w: %s: short frame header", ErrCorrupt, filepath.Base(s.path))
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordSize {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: absurd frame length", ErrCorrupt, filepath.Base(s.path))
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: short frame payload", ErrCorrupt, filepath.Base(s.path))
		}
		if frameCRC(length, payload) != crc {
			if last {
				return nil
			}
			return fmt.Errorf("%w: %s: frame checksum mismatch", ErrCorrupt, filepath.Base(s.path))
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
		seq++
	}
}

// PruneTo deletes whole segments every record of which has sequence
// number below keepSeq. The active segment is never deleted. Checkpoint
// logic calls this after a snapshot makes the prefix redundant.
func (l *Log) PruneTo(keepSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	var firstErr error
	for i, s := range l.segments {
		// A segment's records end where the next segment starts; only a
		// fully superseded, non-active segment may go.
		if i+1 < len(l.segments) && l.segments[i+1].start <= keepSeq {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		kept = append(kept, s)
	}
	removed := len(l.segments) - len(kept)
	l.segments = append([]segment(nil), kept...)
	if firstErr != nil {
		return firstErr
	}
	if removed > 0 {
		return SyncDir(l.dir)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Appends after Close return
// ErrClosed.
func (l *Log) Close() error {
	if l.stop != nil {
		l.stopOnce.Do(func() {
			close(l.stop)
			<-l.done
		})
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory so metadata changes inside it (created,
// renamed or removed files) are durable. Shared by the log and by
// internal/durable's checkpoint machinery.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
