package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, l *Log) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	if err := l.Replay(func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		if got[uint64(i+1)] != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d = %q", i+1, got[uint64(i+1)])
		}
	}
	// The sequence continues where it left off.
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 11 {
		t.Fatalf("continued append: seq=%d err=%v, want 11", seq, err)
	}
}

func TestEmptyRecordSurvives(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		// Half a frame header.
		"short-header": func(b []byte) []byte { return append(b, 0x03, 0x00) },
		// A full header promising more payload than exists.
		"short-payload": func(b []byte) []byte {
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[:4], 100)
			binary.LittleEndian.PutUint32(hdr[4:], frameCRC(100, nil))
			return append(append(b, hdr[:]...), []byte("only-part")...)
		},
		// A complete frame whose payload byte was flipped.
		"bad-crc": func(b []byte) []byte {
			var hdr [frameHeader]byte
			p := []byte("torn-record")
			binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:], frameCRC(uint32(len(p)), p))
			p[0] ^= 0xff
			return append(append(b, hdr[:]...), p...)
		},
		// A zeroed preallocated region must not parse as records.
		"zero-fill": func(b []byte) []byte { return append(b, make([]byte, 64)...) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()

			seg := filepath.Join(dir, fmt.Sprintf(segmentNameFormat, 1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			defer l2.Close()
			got := collect(t, l2)
			if len(got) != 3 {
				t.Fatalf("replayed %d records, want the 3 intact ones", len(got))
			}
			// New appends land cleanly after the truncation point.
			if seq, err := l2.Append([]byte("fresh")); err != nil || seq != 4 {
				t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
			}
			l2.Sync()
			l3, err := Open(dir, Options{Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			defer l3.Close()
			if got := collect(t, l3); got[4] != "fresh" || len(got) != 4 {
				t.Fatalf("after re-append: %v", got)
			}
		})
	}
}

func TestCorruptionInEarlierSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-with-some-bulk-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce >=2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 32}); err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}

	// Prune everything below record 15: every surviving record must still
	// replay, and at least one old segment must be gone.
	if err := l.PruneTo(15); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("prune removed nothing (%d -> %d segments)", len(segs), len(after))
	}
	l.Close()

	l2, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	for seq := uint64(15); seq <= 20; seq++ {
		want := fmt.Sprintf("payload-%02d-padding-padding", seq-1)
		if got[seq] != want {
			t.Fatalf("record %d = %q, want %q", seq, got[seq], want)
		}
	}
	if _, ok := got[20]; !ok {
		t.Fatal("lost the newest record")
	}
}

func TestPruneNeverRemovesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Append([]byte("x"))
	}
	if err := l.PruneTo(100); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(dir); len(segs) != 1 {
		t.Fatalf("active segment pruned: %d segments left", len(segs))
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(got), writers*per)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: p, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if _, err := l.Append([]byte("r")); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := collect(t, l2); len(got) != 50 {
				t.Fatalf("recovered %d records, want 50", len(got))
			}
		})
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			l, err := Open(t.TempDir(), Options{Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Must return ErrClosed, not panic (SyncInterval used to close
			// its stop channel twice).
			if err := l.Close(); err != ErrClosed {
				t.Fatalf("second close: %v, want ErrClosed", err)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}
