package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func followAll(t *testing.T, r *Reader, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		seq, payload, err := r.Next(nil)
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		out = append(out, fmt.Sprintf("%d:%s", seq, payload))
	}
	return out
}

// TestFollowTail: a follower drains the existing log, blocks at the tail,
// and wakes when new records are appended.
func TestFollowTail(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.Follow(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := followAll(t, r, 5)
	if got[0] != "1:rec0" || got[4] != "5:rec4" {
		t.Fatalf("unexpected records: %v", got)
	}

	// Blocked at the tail: an append must wake the reader.
	done := make(chan string, 1)
	go func() {
		seq, payload, err := r.Next(nil)
		if err != nil {
			done <- err.Error()
			return
		}
		done <- fmt.Sprintf("%d:%s", seq, payload)
	}()
	select {
	case v := <-done:
		t.Fatalf("reader returned %q before any append", v)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "6:tail" {
			t.Fatalf("got %q, want 6:tail", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never woke after append")
	}
}

// TestFollowAcrossRotation: a follower attached before a segment rotation
// keeps reading seamlessly into the new segment (the satellite edge case).
func TestFollowAcrossRotation(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := l.Follow(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const n = 20 // tiny segments: rotates every few records
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Info().Segments; segs < 3 {
		t.Fatalf("expected several segments, got %d", segs)
	}
	got := followAll(t, r, n)
	for i, v := range got {
		if want := fmt.Sprintf("%d:record-%02d", i+1, i); v != want {
			t.Fatalf("record %d: got %q, want %q", i, v, want)
		}
	}
}

// TestFollowResumeAtSegmentBoundary: resuming exactly at a segment's
// first record, and at the not-yet-written next sequence number, both
// work (the satellite edge case).
func TestFollowResumeAtSegmentBoundary(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, SegmentSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.mu.Lock()
	if len(l.segments) < 2 {
		l.mu.Unlock()
		t.Fatal("want at least two segments")
	}
	boundary := l.segments[1].start
	l.mu.Unlock()

	r, err := l.Follow(boundary)
	if err != nil {
		t.Fatal(err)
	}
	seq, payload, err := r.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != boundary || string(payload) != fmt.Sprintf("record-%02d", boundary-1) {
		t.Fatalf("boundary resume got %d:%s", seq, payload)
	}
	r.Close()

	// Resume at NextSeq: nothing to read until the next append.
	next := l.NextSeq()
	r2, err := l.Follow(next)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	go l.Append([]byte("future"))
	seq, payload, err = r2.Next(nil)
	if err != nil || seq != next || string(payload) != "future" {
		t.Fatalf("future resume got %d:%s, %v", seq, payload, err)
	}

	// Resuming beyond NextSeq is a caller bug, not a wait.
	if _, err := l.Follow(l.NextSeq() + 10); err == nil {
		t.Fatal("Follow beyond NextSeq must fail")
	}
}

// TestFollowRetentionHold: an attached follower pins segments against
// PruneTo; closing it releases them. Pruned history then yields
// ErrPruned for late followers.
func TestFollowRetentionHold(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, SegmentSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.Follow(1)
	if err != nil {
		t.Fatal(err)
	}
	keep := l.NextSeq()
	if err := l.PruneTo(keep); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestSeq(); got != 1 {
		t.Fatalf("prune ignored the follower hold: oldest = %d, want 1", got)
	}
	// The follower still reads everything from the beginning.
	if got := followAll(t, r, 12); got[0] != "1:record-00" {
		t.Fatalf("held records unreadable: %v", got)
	}
	r.Close()
	if err := l.PruneTo(keep); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestSeq(); got == 1 {
		t.Fatal("prune after reader close removed nothing")
	}
	if _, err := l.Follow(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("Follow into pruned history: err = %v, want ErrPruned", err)
	}
}

// TestFollowTornTailTruncation: the primary crashes with a torn final
// frame while a follower is mid-stream; on reopen the tail is truncated
// and a follower resuming from its last delivered record sees the
// truncated sequence, never the torn frame (the satellite edge case).
func TestFollowTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.Follow(1)
	if err != nil {
		t.Fatal(err)
	}
	followAll(t, r, 3) // mid-stream: 3 of 5 delivered
	r.Close()
	// Crash: abandon the log (no Close) and tear the final frame the way
	// an interrupted write would.
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.NextSeq(); got != 5 {
		t.Fatalf("NextSeq after truncation = %d, want 5 (record 5 torn)", got)
	}
	// The follower resumes from record 4: it gets the surviving record,
	// then the replacement written at the truncated position.
	r2, err := l2.Follow(4)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := followAll(t, r2, 1); got[0] != "4:rec3" {
		t.Fatalf("resume after truncation: %v", got)
	}
	if _, err := l2.Append([]byte("replacement")); err != nil {
		t.Fatal(err)
	}
	if got := followAll(t, r2, 1); got[0] != "5:replacement" {
		t.Fatalf("record at truncated position: %v", got)
	}
}

// TestFollowStopAndClose: stop channels and closes unblock a waiting
// reader with the right sentinels.
func TestFollowStopAndClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := l.Follow(1)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { _, _, err := r.Next(stop); errc <- err }()
	close(stop)
	if err := <-errc; !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped Next: %v, want ErrStopped", err)
	}
	go func() { _, _, err := r.Next(nil); errc <- err }()
	time.Sleep(5 * time.Millisecond)
	r.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("closed Next: %v, want ErrClosed", err)
	}
}
