package binenc

import (
	"bytes"
	"errors"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		enc := AppendUvarint(nil, v)
		got, rest, err := ReadUvarint(enc)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("uvarint %d: got %d rest %d err %v", v, got, len(rest), err)
		}
	}
	if _, _, err := ReadUvarint(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty uvarint: err %v", err)
	}
}

func TestBytesNilVsEmpty(t *testing.T) {
	cases := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 300)}
	for _, b := range cases {
		enc := AppendBytes(nil, b)
		got, rest, err := ReadBytes(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("bytes %v: rest %d err %v", b, len(rest), err)
		}
		if (got == nil) != (b == nil) {
			t.Fatalf("bytes nil-ness lost: in %v out %v", b == nil, got == nil)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("bytes mismatch: %v != %v", got, b)
		}
	}
	// A declared length beyond the input must fail, not allocate.
	enc := AppendUvarint(nil, 1<<40)
	if _, _, err := ReadBytes(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized bytes: err %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "table/column", string(make([]byte, 200))} {
		enc := AppendString(nil, s)
		got, rest, err := ReadString(enc)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("string %q: got %q rest %d err %v", s, got, len(rest), err)
		}
	}
	enc := AppendUvarint(nil, 10) // declares 10 bytes, provides none
	if _, _, err := ReadString(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated string: err %v", err)
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	for _, b := range []bool{false, true} {
		enc := AppendBool(nil, b)
		got, _, err := ReadBool(enc)
		if err != nil || got != b {
			t.Fatalf("bool %v: got %v err %v", b, got, err)
		}
	}
	if _, _, err := ReadBool([]byte{2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bool byte 2: err %v", err)
	}
	if _, _, err := ReadBool(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bool empty: err %v", err)
	}
}

func TestByteSlicesRoundTrip(t *testing.T) {
	cases := [][][]byte{nil, {}, {nil}, {{}, nil, []byte("x")}, {[]byte("a"), []byte("bb")}}
	for _, bs := range cases {
		enc := AppendByteSlices(nil, bs)
		got, rest, err := ReadByteSlices(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("byteslices %v: rest %d err %v", bs, len(rest), err)
		}
		if (got == nil) != (bs == nil) || len(got) != len(bs) {
			t.Fatalf("byteslices shape lost: %v != %v", got, bs)
		}
		for i := range bs {
			if (got[i] == nil) != (bs[i] == nil) || !bytes.Equal(got[i], bs[i]) {
				t.Fatalf("byteslices[%d]: %v != %v", i, got[i], bs[i])
			}
		}
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	cases := [][]bool{nil, {}, {true}, {false, true, true, false}}
	for _, bs := range cases {
		enc := AppendBools(nil, bs)
		got, rest, err := ReadBools(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("bools %v: rest %d err %v", bs, len(rest), err)
		}
		if (got == nil) != (bs == nil) || len(got) != len(bs) {
			t.Fatalf("bools shape lost: %v != %v", got, bs)
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("bools[%d]: %v != %v", i, got[i], bs[i])
			}
		}
	}
}

func TestCountGuard(t *testing.T) {
	rest := make([]byte, 100)
	if n, err := Count(10, rest, 10); err != nil || n != 10 {
		t.Fatalf("count 10x10 in 100: n %d err %v", n, err)
	}
	if _, err := Count(11, rest, 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count 11x10 in 100: err %v", err)
	}
	if _, err := Count(1<<40, rest, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count huge: err %v", err)
	}
}
