// Package binenc holds the primitive append/read helpers shared by the
// hand-rolled wire codec (internal/wire and the proof types it carries).
//
// Conventions, chosen so decoding is allocation-light and encoding is
// canonical (the same value always produces the same bytes):
//
//   - Unsigned integers are uvarints (encoding/binary's format).
//   - Byte slices distinguish nil from empty: nil encodes as uvarint 0,
//     a slice of n bytes as uvarint n+1 followed by the bytes. Several
//     proof fields give nil a distinct meaning (an unbounded range end,
//     an absent value), so the distinction must survive the wire.
//   - Strings encode as uvarint length + bytes ("" is length 0).
//   - Bools are one byte, 0 or 1.
//
// Every Read* helper returns the remaining input and bounds-checks
// against it; malformed input returns ErrCorrupt, never a panic — the
// decoders run against attacker-controlled bytes.
package binenc

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt reports malformed or truncated input.
var ErrCorrupt = errors.New("binenc: corrupt encoding")

// AppendUvarint appends v as a uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ReadUvarint consumes a uvarint from src.
func ReadUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, src[n:], nil
}

// AppendUint64 appends v as 8 fixed big-endian bytes. Trace and span
// IDs use this instead of uvarints: they are uniformly random 64-bit
// values, so a varint would average nine bytes and break the
// fixed-width layout for nothing.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// ReadUint64 consumes 8 fixed big-endian bytes.
func ReadUint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint64(src), src[8:], nil
}

// AppendBool appends b as one byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ReadBool consumes one 0/1 byte.
func ReadBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 || src[0] > 1 {
		return false, nil, ErrCorrupt
	}
	return src[0] == 1, src[1:], nil
}

// AppendBytes appends b preserving nil-ness: nil is uvarint 0, a slice
// of n bytes is uvarint n+1 + the bytes.
func AppendBytes(dst, b []byte) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

// ReadBytes consumes a nil-preserving byte slice. The returned slice is
// a copy, safe to retain after the caller recycles src.
func ReadBytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	n--
	if uint64(len(rest)) < n {
		return nil, nil, ErrCorrupt
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// AppendString appends s as uvarint length + bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString consumes a string.
func ReadString(src []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(src)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrCorrupt
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendByteSlices appends a nil-preserving slice of nil-preserving byte
// slices (nil slice = 0, n elements = n+1).
func AppendByteSlices(dst []byte, bs [][]byte) []byte {
	if bs == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(bs))+1)
	for _, b := range bs {
		dst = AppendBytes(dst, b)
	}
	return dst
}

// ReadByteSlices consumes a slice of byte slices.
func ReadByteSlices(src []byte) ([][]byte, []byte, error) {
	n, rest, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	n--
	// Each element costs at least one length byte: reject counts the
	// remaining input cannot possibly hold, so corrupt input cannot
	// trigger a huge allocation.
	if n > uint64(len(rest)) {
		return nil, nil, ErrCorrupt
	}
	out := make([][]byte, n)
	for i := range out {
		if out[i], rest, err = ReadBytes(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// AppendBools appends a nil-preserving []bool.
func AppendBools(dst []byte, bs []bool) []byte {
	if bs == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(bs))+1)
	for _, b := range bs {
		dst = AppendBool(dst, b)
	}
	return dst
}

// ReadBools consumes a []bool.
func ReadBools(src []byte) ([]bool, []byte, error) {
	n, rest, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rest, nil
	}
	n--
	if n > uint64(len(rest)) {
		return nil, nil, ErrCorrupt
	}
	out := make([]bool, n)
	for i := range out {
		if out[i], rest, err = ReadBool(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// Count bounds a decoded element count against the remaining input,
// assuming each element costs at least min bytes — the guard every
// slice decoder applies before allocating.
func Count(n uint64, rest []byte, min int) (int, error) {
	if min < 1 {
		min = 1
	}
	if n > uint64(len(rest))/uint64(min) {
		return 0, ErrCorrupt
	}
	return int(n), nil
}
