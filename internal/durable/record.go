package durable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/hashutil"
)

// WAL record codec. One record is one committed block — enough to
// re-execute the commit deterministically on recovery (see FORMAT.md):
//
//	height    uvarint
//	txnID     uvarint
//	version   uvarint
//	statement uvarint length || bytes
//	blockHash 32 bytes
//	ncells    uvarint
//	cell      table || column || pk || value (each uvarint length || bytes),
//	          then one flags byte (bit 0: tombstone)

func encodeRecord(rec core.CommitRecord) []byte {
	n := 8 * 4
	n += len(rec.Statement) + hashutil.DigestSize
	for i := range rec.Cells {
		c := &rec.Cells[i]
		n += len(c.Table) + len(c.Column) + len(c.PK) + len(c.Value) + 4*4 + 1
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, rec.Height)
	buf = binary.AppendUvarint(buf, rec.TxnID)
	buf = binary.AppendUvarint(buf, rec.Version)
	buf = appendBytes(buf, []byte(rec.Statement))
	buf = append(buf, rec.BlockHash[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Cells)))
	for i := range rec.Cells {
		c := &rec.Cells[i]
		buf = appendBytes(buf, []byte(c.Table))
		buf = appendBytes(buf, []byte(c.Column))
		buf = appendBytes(buf, c.PK)
		buf = appendBytes(buf, c.Value)
		var flags byte
		if c.Tombstone {
			flags |= 1
		}
		buf = append(buf, flags)
	}
	return buf
}

func decodeRecord(p []byte) (core.CommitRecord, error) {
	var rec core.CommitRecord
	var err error
	if rec.Height, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record height: %w", err)
	}
	if rec.TxnID, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record txn id: %w", err)
	}
	if rec.Version, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record version: %w", err)
	}
	stmt, p, err := takeBytes(p)
	if err != nil {
		return rec, fmt.Errorf("durable: record statement: %w", err)
	}
	rec.Statement = string(stmt)
	if len(p) < hashutil.DigestSize {
		return rec, errors.New("durable: record truncated at block hash")
	}
	copy(rec.BlockHash[:], p)
	p = p[hashutil.DigestSize:]
	ncells, p, err := takeUvarint(p)
	if err != nil {
		return rec, fmt.Errorf("durable: record cell count: %w", err)
	}
	if ncells > uint64(len(p)) { // each cell costs at least one byte
		return rec, errors.New("durable: record cell count exceeds payload")
	}
	rec.Cells = make([]cellstore.Cell, ncells)
	for i := range rec.Cells {
		c := &rec.Cells[i]
		var field []byte
		if field, p, err = takeBytes(p); err != nil {
			return rec, fmt.Errorf("durable: cell %d table: %w", i, err)
		}
		c.Table = string(field)
		if field, p, err = takeBytes(p); err != nil {
			return rec, fmt.Errorf("durable: cell %d column: %w", i, err)
		}
		c.Column = string(field)
		if c.PK, p, err = takeBytes(p); err != nil {
			return rec, fmt.Errorf("durable: cell %d pk: %w", i, err)
		}
		if c.Value, p, err = takeBytes(p); err != nil {
			return rec, fmt.Errorf("durable: cell %d value: %w", i, err)
		}
		if len(p) < 1 {
			return rec, fmt.Errorf("durable: cell %d truncated at flags", i)
		}
		c.Tombstone = p[0]&1 != 0
		c.Version = rec.Version
		p = p[1:]
	}
	if len(p) != 0 {
		return rec, errors.New("durable: trailing record bytes")
	}
	return rec, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("bad uvarint")
	}
	return v, p[n:], nil
}

func takeBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, errors.New("length exceeds payload")
	}
	return p[:n], p[n:], nil
}
