package durable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/hashutil"
)

// WAL record codec. One record is one committed block — enough to
// re-execute the commit deterministically on recovery (see FORMAT.md).
//
// Two record formats exist on disk. v1 (written before group commit)
// carries exactly one transaction and starts directly with the block
// height. v2 carries any number of transactions and starts with a format
// tag: a uvarint with bit 62 set, a value no v1 height can reach (it
// would require 2^62 blocks). The decoder dispatches on the first
// uvarint, so logs written by older versions keep replaying.
//
// v2 layout:
//
//	tag       uvarint   formatTagBase | 2
//	height    uvarint
//	version   uvarint   block version (highest txn version in the batch)
//	blockHash 32 bytes
//	ntxns     uvarint
//	ntxns ×:
//	  txnID     uvarint
//	  version   uvarint  this transaction's commit version
//	  statement uvarint length || bytes
//	  ncells    uvarint
//	  ncells ×: table || column || pk || value (each uvarint length ||
//	            bytes), then one flags byte (bit 0: tombstone)
//
// v1 layout (decode only):
//
//	height    uvarint
//	txnID     uvarint
//	version   uvarint
//	statement uvarint length || bytes
//	blockHash 32 bytes
//	ncells    uvarint
//	ncells ×: table || column || pk || value, then one flags byte

const (
	// formatTagBase marks a versioned record; the low bits carry the
	// format number. Chosen so that no plausible v1 height collides.
	formatTagBase  = uint64(1) << 62
	recordFormatV2 = 2
)

// EncodeRecord frames one committed block in the current (v2) record
// format. Replication ships these frames verbatim, so primary and
// replica logs stay bit-compatible.
func EncodeRecord(rec core.CommitRecord) []byte {
	n := 8 * 4
	n += hashutil.DigestSize
	for t := range rec.Txns {
		tx := &rec.Txns[t]
		n += 8*3 + len(tx.Statement)
		for i := range tx.Cells {
			c := &tx.Cells[i]
			n += len(c.Table) + len(c.Column) + len(c.PK) + len(c.Value) + 4*4 + 1
		}
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, formatTagBase|recordFormatV2)
	buf = binary.AppendUvarint(buf, rec.Height)
	buf = binary.AppendUvarint(buf, rec.Version)
	buf = append(buf, rec.BlockHash[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Txns)))
	for t := range rec.Txns {
		tx := &rec.Txns[t]
		buf = binary.AppendUvarint(buf, tx.ID)
		buf = binary.AppendUvarint(buf, tx.Version)
		buf = appendBytes(buf, []byte(tx.Statement))
		buf = binary.AppendUvarint(buf, uint64(len(tx.Cells)))
		for i := range tx.Cells {
			c := &tx.Cells[i]
			buf = appendBytes(buf, []byte(c.Table))
			buf = appendBytes(buf, []byte(c.Column))
			buf = appendBytes(buf, c.PK)
			buf = appendBytes(buf, c.Value)
			var flags byte
			if c.Tombstone {
				flags |= 1
			}
			buf = append(buf, flags)
		}
	}
	return buf
}

// DecodeRecord parses a WAL record of either on-disk format (v1 or v2).
// Recovery and replica replay share it, so a follower can apply any
// frame its primary could.
func DecodeRecord(p []byte) (core.CommitRecord, error) {
	first, rest, err := takeUvarint(p)
	if err != nil {
		return core.CommitRecord{}, fmt.Errorf("durable: record prefix: %w", err)
	}
	if first < formatTagBase {
		// Legacy single-transaction record: the first uvarint is the
		// block height itself.
		return decodeRecordV1(first, rest)
	}
	if format := first &^ formatTagBase; format != recordFormatV2 {
		return core.CommitRecord{}, fmt.Errorf("durable: unsupported record format %d", format)
	}
	return decodeRecordV2(rest)
}

// DecodeRecordHeight peeks a record's block height without decoding its
// body. Recovery uses it to skip records a checkpoint already covers —
// with large checkpointed tails this is the difference between O(1) and
// O(state) per skipped record.
func DecodeRecordHeight(p []byte) (uint64, error) {
	first, rest, err := takeUvarint(p)
	if err != nil {
		return 0, fmt.Errorf("durable: record prefix: %w", err)
	}
	if first < formatTagBase {
		return first, nil // legacy v1: the first uvarint is the height
	}
	if format := first &^ formatTagBase; format != recordFormatV2 {
		return 0, fmt.Errorf("durable: unsupported record format %d", format)
	}
	height, _, err := takeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("durable: record height: %w", err)
	}
	return height, nil
}

func decodeRecordV2(p []byte) (core.CommitRecord, error) {
	var rec core.CommitRecord
	var err error
	if rec.Height, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record height: %w", err)
	}
	if rec.Version, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record version: %w", err)
	}
	if len(p) < hashutil.DigestSize {
		return rec, errors.New("durable: record truncated at block hash")
	}
	copy(rec.BlockHash[:], p)
	p = p[hashutil.DigestSize:]
	ntxns, p, err := takeUvarint(p)
	if err != nil {
		return rec, fmt.Errorf("durable: record txn count: %w", err)
	}
	if ntxns == 0 {
		return rec, errors.New("durable: record with zero transactions")
	}
	if ntxns > uint64(len(p)) { // each txn costs at least one byte
		return rec, errors.New("durable: record txn count exceeds payload")
	}
	rec.Txns = make([]core.TxnCommit, ntxns)
	for t := range rec.Txns {
		tx := &rec.Txns[t]
		if tx.ID, p, err = takeUvarint(p); err != nil {
			return rec, fmt.Errorf("durable: txn %d id: %w", t, err)
		}
		if tx.Version, p, err = takeUvarint(p); err != nil {
			return rec, fmt.Errorf("durable: txn %d version: %w", t, err)
		}
		stmt, rest, err := takeBytes(p)
		if err != nil {
			return rec, fmt.Errorf("durable: txn %d statement: %w", t, err)
		}
		tx.Statement = string(stmt)
		p = rest
		if tx.Cells, p, err = decodeCells(p, tx.Version); err != nil {
			return rec, fmt.Errorf("durable: txn %d: %w", t, err)
		}
	}
	if len(p) != 0 {
		return rec, errors.New("durable: trailing record bytes")
	}
	return rec, nil
}

// decodeRecordV1 parses the remainder of a legacy record, the height
// having already been consumed by the dispatcher.
func decodeRecordV1(height uint64, p []byte) (core.CommitRecord, error) {
	rec := core.CommitRecord{Height: height, Txns: make([]core.TxnCommit, 1)}
	tx := &rec.Txns[0]
	var err error
	if tx.ID, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record txn id: %w", err)
	}
	if tx.Version, p, err = takeUvarint(p); err != nil {
		return rec, fmt.Errorf("durable: record version: %w", err)
	}
	rec.Version = tx.Version
	stmt, p, err := takeBytes(p)
	if err != nil {
		return rec, fmt.Errorf("durable: record statement: %w", err)
	}
	tx.Statement = string(stmt)
	if len(p) < hashutil.DigestSize {
		return rec, errors.New("durable: record truncated at block hash")
	}
	copy(rec.BlockHash[:], p)
	p = p[hashutil.DigestSize:]
	if tx.Cells, p, err = decodeCells(p, tx.Version); err != nil {
		return rec, err
	}
	if len(p) != 0 {
		return rec, errors.New("durable: trailing record bytes")
	}
	return rec, nil
}

func decodeCells(p []byte, version uint64) ([]cellstore.Cell, []byte, error) {
	ncells, p, err := takeUvarint(p)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: record cell count: %w", err)
	}
	if ncells > uint64(len(p)) { // each cell costs at least one byte
		return nil, nil, errors.New("durable: record cell count exceeds payload")
	}
	cells := make([]cellstore.Cell, ncells)
	for i := range cells {
		c := &cells[i]
		var field []byte
		if field, p, err = takeBytes(p); err != nil {
			return nil, nil, fmt.Errorf("durable: cell %d table: %w", i, err)
		}
		c.Table = string(field)
		if field, p, err = takeBytes(p); err != nil {
			return nil, nil, fmt.Errorf("durable: cell %d column: %w", i, err)
		}
		c.Column = string(field)
		if c.PK, p, err = takeBytes(p); err != nil {
			return nil, nil, fmt.Errorf("durable: cell %d pk: %w", i, err)
		}
		if c.Value, p, err = takeBytes(p); err != nil {
			return nil, nil, fmt.Errorf("durable: cell %d value: %w", i, err)
		}
		if len(p) < 1 {
			return nil, nil, fmt.Errorf("durable: cell %d truncated at flags", i)
		}
		c.Tombstone = p[0]&1 != 0
		c.Version = version
		p = p[1:]
	}
	return cells, p, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("bad uvarint")
	}
	return v, p[n:], nil
}

func takeBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, errors.New("length exceeds payload")
	}
	return p[:n], p[n:], nil
}
