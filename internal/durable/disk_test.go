package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spitz/internal/core"
	"spitz/internal/hashutil"
	"spitz/internal/wal"
)

func diskOpts(o Options) Options {
	o.Store = StoreDisk
	if o.NodeCacheMB == 0 {
		o.NodeCacheMB = 8
	}
	return noAutoCkpt(o)
}

func TestDiskStoreRoundTripReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	if m.StoreKind() != StoreDisk || m.NodeStore() == nil {
		t.Fatalf("store kind = %v, node store = %v", m.StoreKind(), m.NodeStore())
	}
	commitN(t, m.Engine(), 0, 10)
	digest := m.Engine().Digest()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	// Root-addressed open: the checkpoint named everything, so no WAL
	// record needed replaying to reach the recovered digest.
	if n := m2.sinceCkpt.Load(); n != 0 {
		t.Fatalf("replayed %d WAL records after a clean checkpointed close", n)
	}
	if h := m2.CheckpointHeight(); h != 10 {
		t.Fatalf("recovered checkpoint height = %d, want 10", h)
	}
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after reopen = %+v, want %+v", got, digest)
	}
	res, err := m2.Engine().GetVerified("t", "c", []byte("k003"))
	if err != nil || !res.Found {
		t.Fatalf("verified read after reopen: found=%v err=%v", res.Found, err)
	}
	if res.Digest != digest {
		t.Fatalf("verified read digest %+v, want %+v", res.Digest, digest)
	}
	checkN(t, m2.Engine(), 10)

	// The reopened engine keeps committing, and history chains on.
	commitN(t, m2.Engine(), 10, 12)
	checkN(t, m2.Engine(), 12)
	if _, err := m2.Engine().ConsistencyProof(digest); err != nil {
		t.Fatalf("consistency proof across reopen: %v", err)
	}
}

func TestDiskCrashWithoutCloseReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 10)
	digest := m.Engine().Digest()
	// Crash: no Checkpoint, no Close. Nothing reached the node store —
	// recovery must come entirely from the WAL.

	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after crash recovery = %+v, want %+v", got, digest)
	}
	checkN(t, m2.Engine(), 10)
	commitN(t, m2.Engine(), 10, 12)
	checkN(t, m2.Engine(), 12)
}

func TestDiskCheckpointThenCrashReplaysTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 6)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 6, 10)
	digest := m.Engine().Digest()
	// Crash without Close: blocks 6..9 exist only in the WAL.

	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest = %+v, want %+v", got, digest)
	}
	if n := m2.sinceCkpt.Load(); n != 4 {
		t.Fatalf("replayed %d WAL records, want 4", n)
	}
	checkN(t, m2.Engine(), 10)
	if h := m2.CheckpointHeight(); h != 6 {
		t.Fatalf("checkpoint height = %d, want 6", h)
	}
}

func TestDiskHistorySurvivesCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Engine().Apply("upd", []core.Put{
			{Table: "t", Column: "c", PK: []byte("k"), Value: []byte(fmt.Sprintf("gen%d", i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Engine().Apply("upd", []core.Put{
		{Table: "t", Column: "c", PK: []byte("k"), Value: []byte("gen4")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Demoted versions for gen0..gen2 came back through the VLOG (gen3's
	// demotion rides the WAL tail); both sources overlap and dedup.
	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	hist, err := m2.Engine().History("t", "c", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 {
		t.Fatalf("recovered history has %d versions, want 5", len(hist))
	}
	if string(hist[0].Value) != "gen4" || string(hist[4].Value) != "gen0" {
		t.Fatalf("history order wrong: newest %q oldest %q", hist[0].Value, hist[4].Value)
	}
}

func TestDiskPartialCheckpointRecoversPreviousRoot(t *testing.T) {
	for _, stage := range []string{"vlog", "flush"} {
		t.Run("crash-after-"+stage, func(t *testing.T) {
			dir := t.TempDir()
			m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
			if err != nil {
				t.Fatal(err)
			}
			commitN(t, m.Engine(), 0, 5)
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			commitN(t, m.Engine(), 5, 10)
			digest := m.Engine().Digest()
			m.ckptCrash = func(s string) bool { return s == stage }
			if err := m.Checkpoint(); !errors.Is(err, errCkptCrashed) {
				t.Fatalf("checkpoint = %v, want simulated crash", err)
			}
			// Crash: the manifest still points at height 5. Flushed-but-
			// unnamed nodes and duplicate VLOG entries are orphans the
			// replay deduplicates.

			m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer m2.Close()
			if h := m2.CheckpointHeight(); h != 5 {
				t.Fatalf("checkpoint height = %d, want previous root at 5", h)
			}
			if got := m2.Engine().Digest(); got != digest {
				t.Fatalf("digest = %+v, want %+v", got, digest)
			}
			checkN(t, m2.Engine(), 10)
			// A full checkpoint now succeeds and the next reopen is clean.
			if err := m2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if h := m2.CheckpointHeight(); h != 10 {
				t.Fatalf("post-recovery checkpoint height = %d, want 10", h)
			}
		})
	}
}

func TestDiskStoreMarkerIsAuthoritative(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 3)
	digest := m.Engine().Digest()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Asking for the memory store on a disk-store directory still opens
	// disk: the marker, not the flag, decides.
	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways, Store: StoreMemory}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.StoreKind() != StoreDisk {
		t.Fatalf("store kind = %v, want disk", m2.StoreKind())
	}
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest = %+v, want %+v", got, digest)
	}
}

func TestDiskRefusesMemoryStoreDirectory(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways})); err == nil {
		t.Fatal("disk open of a memory-store directory succeeded; want refusal")
	}
}

func TestDiskCorruptHeaderChainDetected(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 5)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	flipBlockHeaderByte(t, filepath.Join(dir, nodesDirName))

	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways}))
	if err == nil {
		m2.Close()
		t.Fatal("open served a bit-flipped header chain; want verification failure")
	}
}

// flipBlockHeaderByte parses the node-store segment files (format in
// FORMAT.md: 8-byte magic, then records of len u32 BE | domain u8 |
// digest [32] | crc u32 BE | payload) and flips one payload byte of the
// last DomainBlock record — the ledger head header the reopen chain walk
// starts from.
func flipBlockHeaderByte(t *testing.T, nodesDir string) {
	t.Helper()
	ents, err := os.ReadDir(nodesDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".spz" {
			segs = append(segs, filepath.Join(nodesDir, e.Name()))
		}
	}
	sort.Strings(segs)
	for i := len(segs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(segs[i])
		if err != nil {
			t.Fatal(err)
		}
		lastOff := -1
		pos := 8 // past magic
		for pos+41 <= len(data) {
			n := int(binary.BigEndian.Uint32(data[pos:]))
			if pos+41+n > len(data) {
				break // sealed-segment index footer
			}
			if data[pos+4] == hashutil.DomainBlock {
				lastOff = pos + 41 // first payload byte
			}
			pos += 41 + n
		}
		if lastOff >= 0 {
			data[lastOff] ^= 0x01
			if err := os.WriteFile(segs[i], data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no DomainBlock record found in any segment")
}

func TestDiskTinyCacheServesFullKeyspace(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways, NodeCacheMB: 64}))
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 2048)
	for i := 0; i < 200; i++ {
		if _, err := m.Engine().Apply("load", []core.Put{
			{Table: "t", Column: "c", PK: []byte(fmt.Sprintf("key-%04d", i)), Value: val},
		}); err != nil {
			t.Fatal(err)
		}
	}
	digest := m.Engine().Digest()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the minimum cache budget: every proof path faults in
	// from the segment files and still verifies.
	m2, err := Open(dir, diskOpts(Options{Sync: wal.SyncAlways, NodeCacheMB: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i := 0; i < 200; i++ {
		res, err := m2.Engine().GetVerified("t", "c", []byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !res.Found {
			t.Fatalf("key-%04d: found=%v err=%v", i, res.Found, err)
		}
		if res.Digest != digest {
			t.Fatalf("key-%04d proved against %+v, want %+v", i, res.Digest, digest)
		}
	}
	cs := m2.NodeStore().CacheStats()
	if cs.Misses == 0 {
		t.Fatalf("expected cache misses under a 1MB budget, stats %+v", cs)
	}
}
