package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/txn"
	"spitz/internal/wal"
)

// noAutoCkpt disables background checkpointing so tests control exactly
// when snapshots happen.
func noAutoCkpt(o Options) Options {
	o.CheckpointInterval = -1
	return o
}

func commitN(t *testing.T, eng *core.Engine, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		_, err := eng.Apply(fmt.Sprintf("stmt-%d", i), []core.Put{
			{Table: "t", Column: "c", PK: []byte(fmt.Sprintf("k%03d", i)), Value: []byte(fmt.Sprintf("v%d", i))},
			{Table: "t", Column: "d", PK: []byte("shared"), Value: []byte(fmt.Sprintf("d%d", i))},
		})
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

func checkN(t *testing.T, eng *core.Engine, n int) {
	t.Helper()
	if h := eng.Ledger().Height(); h != uint64(n) {
		t.Fatalf("height = %d, want %d", h, n)
	}
	for i := 0; i < n; i++ {
		v, err := eng.Get("t", "c", []byte(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatalf("get k%03d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d = %q", i, v)
		}
	}
	if n > 0 {
		v, err := eng.Get("t", "d", []byte("shared"))
		if err != nil || string(v) != fmt.Sprintf("d%d", n-1) {
			t.Fatalf("shared cell = %q, %v (want d%d)", v, err, n-1)
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := core.CommitRecord{Height: 7, Version: 44}
	rec.BlockHash[0], rec.BlockHash[31] = 0xab, 0xcd
	for tn := 0; tn < 2; tn++ {
		tx := core.TxnCommit{ID: uint64(3 + tn), Version: uint64(42 + tn),
			Statement: fmt.Sprintf("INSERT INTO t%d", tn)}
		for i := 0; i < 3; i++ {
			tx.Cells = append(tx.Cells, cellstore.Cell{
				Table: "t", Column: fmt.Sprintf("col%d", i), PK: []byte{byte(i)},
				Version: tx.Version, Value: []byte(fmt.Sprintf("val%d", i)), Tombstone: i == 2,
			})
		}
		rec.Txns = append(rec.Txns, tx)
	}
	got, err := DecodeRecord(EncodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != rec.Height || got.Version != rec.Version ||
		got.BlockHash != rec.BlockHash || len(got.Txns) != 2 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
	for tn, tx := range got.Txns {
		want := rec.Txns[tn]
		if tx.ID != want.ID || tx.Version != want.Version || tx.Statement != want.Statement ||
			len(tx.Cells) != len(want.Cells) {
			t.Fatalf("txn %d mismatch: %+v vs %+v", tn, tx, want)
		}
		for i, c := range tx.Cells {
			wc := want.Cells[i]
			if c.Table != wc.Table || c.Column != wc.Column || !bytes.Equal(c.PK, wc.PK) ||
				!bytes.Equal(c.Value, wc.Value) || c.Tombstone != wc.Tombstone || c.Version != wc.Version {
				t.Fatalf("txn %d cell %d mismatch: %+v vs %+v", tn, i, c, wc)
			}
		}
	}
	if _, err := DecodeRecord(EncodeRecord(rec)[:10]); err == nil {
		t.Fatal("truncated record decoded")
	}
}

// encodeRecordV1 reproduces the legacy single-transaction record layout
// (see FORMAT.md) so the tests can exercise the v1 decode path with
// bytes identical to what pre-group-commit builds wrote.
func encodeRecordV1(rec core.CommitRecord) []byte {
	tx := rec.Txns[0]
	var buf []byte
	buf = binary.AppendUvarint(buf, rec.Height)
	buf = binary.AppendUvarint(buf, tx.ID)
	buf = binary.AppendUvarint(buf, tx.Version)
	buf = binary.AppendUvarint(buf, uint64(len(tx.Statement)))
	buf = append(buf, tx.Statement...)
	buf = append(buf, rec.BlockHash[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(tx.Cells)))
	for i := range tx.Cells {
		c := &tx.Cells[i]
		for _, field := range [][]byte{[]byte(c.Table), []byte(c.Column), c.PK, c.Value} {
			buf = binary.AppendUvarint(buf, uint64(len(field)))
			buf = append(buf, field...)
		}
		var flags byte
		if c.Tombstone {
			flags |= 1
		}
		buf = append(buf, flags)
	}
	return buf
}

func TestRecordCodecDecodesLegacyV1(t *testing.T) {
	rec := core.CommitRecord{Height: 9, Version: 21, Txns: []core.TxnCommit{{
		ID: 4, Version: 21, Statement: "UPDATE t",
		Cells: []cellstore.Cell{
			{Table: "t", Column: "c", PK: []byte("pk"), Version: 21, Value: []byte("v")},
			{Table: "t", Column: "d", PK: []byte("pk"), Version: 21, Tombstone: true},
		},
	}}}
	rec.BlockHash[5] = 0x77
	got, err := DecodeRecord(encodeRecordV1(rec))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.Height != rec.Height || got.Version != rec.Version || got.BlockHash != rec.BlockHash ||
		len(got.Txns) != 1 {
		t.Fatalf("v1 round trip mismatch: %+v", got)
	}
	tx, want := got.Txns[0], rec.Txns[0]
	if tx.ID != want.ID || tx.Version != want.Version || tx.Statement != want.Statement ||
		len(tx.Cells) != 2 || !bytes.Equal(tx.Cells[0].Value, []byte("v")) ||
		!tx.Cells[1].Tombstone || tx.Cells[0].Version != 21 {
		t.Fatalf("v1 txn mismatch: %+v vs %+v", tx, want)
	}
}

func TestRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 10)
	digest := m.Engine().Digest()
	// Crash: the handle is dropped without Close; SyncAlways means every
	// commit already hit the disk.

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after recovery = %+v, want %+v", got, digest)
	}
	checkN(t, m2.Engine(), 10)

	// The recovered engine keeps committing where the old one stopped.
	commitN(t, m2.Engine(), 10, 12)
	checkN(t, m2.Engine(), 12)
}

func TestRecoveryWithCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 6)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if h := m.CheckpointHeight(); h != 6 {
		t.Fatalf("checkpoint height = %d, want 6", h)
	}
	commitN(t, m.Engine(), 6, 10) // WAL tail beyond the checkpoint
	digest := m.Engine().Digest()
	// Crash without Close.

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after recovery = %+v, want %+v", got, digest)
	}
	checkN(t, m2.Engine(), 10)
	if h := m2.CheckpointHeight(); h != 6 {
		t.Fatalf("recovered checkpoint height = %d, want 6", h)
	}
}

func TestCheckpointPrunesWAL(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every few commits rotate.
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways, SegmentSize: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	commitN(t, m.Engine(), 0, 30)
	before := countWALSegments(t, dir)
	if before < 3 {
		t.Fatalf("expected several WAL segments before checkpoint, got %d", before)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := countWALSegments(t, dir)
	if after >= before {
		t.Fatalf("checkpoint pruned nothing: %d -> %d segments", before, after)
	}
	// And the pruned log still recovers the full database.
	digest := m.Engine().Digest()
	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways, SegmentSize: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after prune+recovery = %+v, want %+v", got, digest)
	}
	checkN(t, m2.Engine(), 30)
}

func TestCheckpointReplacesPredecessor(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	commitN(t, m.Engine(), 0, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 3, 6)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, ckptDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d checkpoint files on disk, want 1", len(entries))
	}
	if entries[0].Name() != fmt.Sprintf(ckptNameFormat, 6) {
		t.Fatalf("surviving checkpoint = %s", entries[0].Name())
	}
}

func TestTornFinalRecordLosesOnlyLastBlock(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 8)
	// Crash mid-append: chop bytes off the final WAL frame.
	seg := lastWALSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer m2.Close()
	checkN(t, m2.Engine(), 7) // block 8 was torn; 7 survive
	// And the database accepts new commits after the truncation.
	commitN(t, m2.Engine(), 7, 9)
	checkN(t, m2.Engine(), 9)
}

func TestTamperedRecordRejectedByHashCheck(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 3)

	// Rewrite the last frame with a modified cell value and a *correct*
	// CRC: the frame checksum passes, so only the verified replay (block
	// hash comparison) can catch it.
	seg := lastWALSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frames := splitFrames(t, data)
	last := frames[len(frames)-1]
	rec, err := DecodeRecord(last)
	if err != nil {
		t.Fatal(err)
	}
	rec.Txns[0].Cells[0].Value = []byte("tampered")
	forged := EncodeRecord(rec)
	var out []byte
	for _, f := range frames[:len(frames)-1] {
		out = appendFrame(out, f)
	}
	out = appendFrame(out, forged)
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways})); err == nil {
		t.Fatal("recovery accepted a tampered WAL record")
	} else if !bytes.Contains([]byte(err.Error()), []byte("hash")) {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestTransactionalCommitsAreLogged(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways, Mode: txn.ModeOCC}))
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Engine().Begin()
	if err := tx.Put("t", "c", []byte("txk"), []byte("txv")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	digest := m.Engine().Digest()

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways, Mode: txn.ModeOCC}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after txn recovery = %+v, want %+v", got, digest)
	}
	v, err := m2.Engine().Get("t", "c", []byte("txk"))
	if err != nil || string(v) != "txv" {
		t.Fatalf("txn write lost: %q, %v", v, err)
	}
}

func TestBackgroundCheckpointByBlockCount(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: wal.SyncAlways, CheckpointEveryBlocks: 5, CheckpointInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	commitN(t, m.Engine(), 0, 12)
	deadline := time.Now().Add(5 * time.Second)
	for m.CheckpointHeight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint after 12 commits with CheckpointEveryBlocks=5")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTxnIDsNeverReusedAfterRecovery: recovery from a checkpoint alone
// (empty WAL tail) must still resume transaction IDs above everything in
// the restored ledger — duplicate IDs would corrupt the audit history.
func TestTxnIDsNeverReusedAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	commitN(t, m2.Engine(), 3, 5)
	seen := make(map[uint64]bool)
	l := m2.Engine().Ledger()
	for h := uint64(0); h < l.Height(); h++ {
		body, err := l.Body(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, txnSum := range body {
			if seen[txnSum.ID] {
				t.Fatalf("txn id %d reused (block %d)", txnSum.ID, h)
			}
			seen[txnSum.ID] = true
		}
	}
}

func TestHistorySurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Engine().Apply("upd", []core.Put{
			{Table: "t", Column: "c", PK: []byte("k"), Value: []byte(fmt.Sprintf("gen%d", i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Engine().Apply("upd", []core.Put{
		{Table: "t", Column: "c", PK: []byte("k"), Value: []byte("gen4")},
	}); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	hist, err := m2.Engine().History("t", "c", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 {
		t.Fatalf("recovered history has %d versions, want 5", len(hist))
	}
	if string(hist[0].Value) != "gen4" || string(hist[4].Value) != "gen0" {
		t.Fatalf("history order wrong: newest %q oldest %q", hist[0].Value, hist[4].Value)
	}
}

func TestManifestSurvivesCrashDuringRewrite(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	digest := m.Engine().Digest()
	// Simulate a crash between writing MANIFEST.tmp and the rename: a
	// stray tmp file must not confuse recovery.
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest = %+v, want %+v", got, digest)
	}
}

func TestVerifiedReadsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, m.Engine(), 0, 5)
	old := m.Engine().Digest()

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	res, err := m2.Engine().GetVerified("t", "c", []byte("k002"))
	if err != nil || !res.Found {
		t.Fatalf("verified read after recovery: found=%v err=%v", res.Found, err)
	}
	if res.Digest != old {
		t.Fatalf("verified read digest %+v, want pre-crash %+v", res.Digest, old)
	}
	// A consistency proof from the pre-crash digest must still verify —
	// recovery preserved, not rewrote, history.
	commitN(t, m2.Engine(), 5, 7)
	if _, err := m2.Engine().ConsistencyProof(old); err != nil {
		t.Fatalf("consistency proof across recovery: %v", err)
	}
}

// --- helpers -------------------------------------------------------------

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, walDirName))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			out = append(out, filepath.Join(dir, walDirName, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}

func countWALSegments(t *testing.T, dir string) int { return len(walFiles(t, dir)) }

func lastWALSegment(t *testing.T, dir string) string {
	files := walFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no WAL segments")
	}
	return files[len(files)-1]
}

// splitFrames parses a segment file into record payloads.
func splitFrames(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var out [][]byte
	for len(data) > 0 {
		if len(data) < 8 {
			t.Fatal("trailing partial frame")
		}
		n := binary.LittleEndian.Uint32(data[:4])
		out = append(out, data[8:8+n])
		data = data[8+n:]
	}
	return out
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	c := crc32.Update(0, crc32.MakeTable(crc32.Castagnoli), hdr[:4])
	c = crc32.Update(c, crc32.MakeTable(crc32.Castagnoli), payload)
	binary.LittleEndian.PutUint32(hdr[4:], c)
	return append(append(buf, hdr[:]...), payload...)
}

// captureSink records CommitRecords handed to it (for building legacy
// WAL contents from real commits).
type captureSink struct{ seen []core.CommitRecord }

func (s *captureSink) Append(rec core.CommitRecord) (func() error, error) {
	s.seen = append(s.seen, rec)
	return func() error { return nil }, nil
}

// TestMultiTxnBlockRecovery: a block carrying several transactions (group
// commit) must replay from the WAL to the identical digest after an
// unclean stop.
func TestMultiTxnBlockRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	as, ok := m.Engine().TxnStore().(txn.AsyncStore)
	if !ok {
		t.Fatal("engine store is not async")
	}
	// Enqueue several commits before any leader runs: they all land in
	// one ledger block and one WAL record.
	const n = 4
	waits := make([]func() error, n)
	for i := 0; i < n; i++ {
		key := cellstore.CellPrefix("t", "c", []byte(fmt.Sprintf("k%d", i)))
		_, wait, err := as.ApplyBatchAsync([]txn.Write{{Key: key, Value: []byte(fmt.Sprintf("v%d", i))}})
		if err != nil {
			t.Fatal(err)
		}
		waits[i] = wait
	}
	for _, wait := range waits {
		if err := wait(); err != nil {
			t.Fatal(err)
		}
	}
	if h := m.Engine().Ledger().Height(); h != 1 {
		t.Fatalf("height = %d, want 1 multi-txn block", h)
	}
	digest := m.Engine().Digest()
	// Crash without Close; SyncAlways already made the record durable.

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest after multi-txn recovery = %+v, want %+v", got, digest)
	}
	body, err := m2.Engine().Ledger().Body(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != n {
		t.Fatalf("recovered block carries %d txn summaries, want %d", len(body), n)
	}
	for i := 0; i < n; i++ {
		v, err := m2.Engine().Get("t", "c", []byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v", i, v, err)
		}
	}
	// New transaction IDs continue above the recovered block's.
	if _, err := m2.Engine().Apply("after", []core.Put{{Table: "t", Column: "c", PK: []byte("kx"), Value: []byte("vx")}}); err != nil {
		t.Fatal(err)
	}
	last, err := m2.Engine().Ledger().Body(1)
	if err != nil {
		t.Fatal(err)
	}
	if last[0].ID < uint64(n) {
		t.Fatalf("txn id %d reused after multi-txn recovery", last[0].ID)
	}
}

// TestLegacyV1WALReplays: a WAL written by the pre-group-commit format
// (one transaction per record, no format tag) must still recover, and
// new commits appended to the same log afterwards (in the v2 format)
// must coexist with it.
func TestLegacyV1WALReplays(t *testing.T) {
	// Build reference commits on a plain engine, capturing the records.
	src := core.New(core.Options{})
	sink := &captureSink{}
	src.SetCommitSink(sink)
	commitN(t, src, 0, 5)
	digest := src.Digest()

	// Write them as v1 frames into a fresh data directory's WAL.
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, walDirName), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sink.seen {
		if len(rec.Txns) != 1 {
			t.Fatalf("serial commit produced %d txns in one block", len(rec.Txns))
		}
		if _, err := log.Append(encodeRecordV1(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery from v1 log: %v", err)
	}
	if got := m.Engine().Digest(); got != digest {
		t.Fatalf("digest from v1 log = %+v, want %+v", got, digest)
	}
	checkN(t, m.Engine(), 5)

	// Append new commits — written in the v2 format — and recover the
	// now mixed-format log.
	commitN(t, m.Engine(), 5, 8)
	digest = m.Engine().Digest()
	// Crash without Close.

	m2, err := Open(dir, noAutoCkpt(Options{Sync: wal.SyncAlways}))
	if err != nil {
		t.Fatalf("recovery from mixed-format log: %v", err)
	}
	defer m2.Close()
	if got := m2.Engine().Digest(); got != digest {
		t.Fatalf("digest from mixed log = %+v, want %+v", got, digest)
	}
	checkN(t, m2.Engine(), 8)
}
