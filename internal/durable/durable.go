// Package durable is the persistence layer of Spitz: it pairs the
// in-memory verifiable engine (internal/core) with a write-ahead log
// (internal/wal) and periodic snapshot checkpoints so that the
// tamper-evident history survives a process crash.
//
// A Manager owns one data directory:
//
//	<dir>/MANIFEST      points at the newest durable checkpoint
//	<dir>/wal/          segmented write-ahead log of committed blocks
//	<dir>/checkpoints/  full engine snapshots (Engine.WriteSnapshot)
//
// Every committed block is framed into the WAL — statement, writes and
// the block hash — before the commit is acknowledged (the Manager is the
// engine's core.CommitSink). Checkpoints stream the engine snapshot to
// disk in the background and then prune WAL segments the snapshot made
// redundant. On open, the newest checkpoint is restored and the WAL tail
// replayed on top; each replayed block must reproduce its logged hash, so
// recovery is verified end to end — a tampered log or snapshot is
// rejected, never silently loaded. See FORMAT.md for the on-disk format.
package durable

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spitz/internal/cas"
	"spitz/internal/core"
	"spitz/internal/txn"
	"spitz/internal/txn/tso"
	"spitz/internal/wal"
)

// TimestampSource allocates commit versions and can be advanced past
// versions recovered from disk. tso.Oracle satisfies it (the default);
// txn.ClockSource satisfies it for clustered deployments where every
// shard must draw from one hybrid logical clock.
type TimestampSource interface {
	txn.TimestampSource
	Advance(v uint64)
}

// Options configures a Manager.
type Options struct {
	// Mode selects the engine's concurrency control scheme.
	Mode txn.Mode
	// Timestamps, when non-nil, allocates the engine's commit versions;
	// recovery advances it past every replayed version. nil uses a fresh
	// local oracle.
	Timestamps TimestampSource
	// MaintainInverted enables the engine's inverted index.
	MaintainInverted bool
	// MaxBatchTxns and MaxBatchDelay configure the engine's group-commit
	// pipeline (see core.Options).
	MaxBatchTxns  int
	MaxBatchDelay time.Duration

	// Sync selects when commits become durable (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the background fsync period under wal.SyncInterval.
	SyncInterval time.Duration
	// SegmentSize caps WAL segment files (default 64 MiB).
	SegmentSize int64

	// CheckpointInterval triggers a background checkpoint this often;
	// CheckpointEveryBlocks triggers one after that many commits. When
	// both are zero they default to 1 minute and 4096 blocks; a negative
	// CheckpointInterval disables automatic checkpoints entirely
	// (Checkpoint can still be called by hand).
	CheckpointInterval    time.Duration
	CheckpointEveryBlocks uint64

	// Store selects the node-store backend (see StoreKind). The choice is
	// recorded in the data directory on creation and is authoritative from
	// then on: a disk-store database always reopens as disk.
	Store StoreKind
	// NodeCacheMB bounds the disk store's in-memory body cache (clean
	// bodies plus the dirty write-back set), in MiB. Zero means the 64 MiB
	// default. Ignored for StoreMemory.
	NodeCacheMB int
}

const (
	manifestName   = "MANIFEST"
	manifestMagic  = "spitz-manifest-v1"
	walDirName     = "wal"
	ckptDirName    = "checkpoints"
	ckptNameFormat = "ckpt-%016d.snap"
)

// ClusterMarkerName is the file a sharded cluster (internal/server)
// writes at the top of its data directory. durable refuses to open such
// a directory as a single-engine database; the name lives here so the
// cluster layer and every layout guard agree on one spelling.
const ClusterMarkerName = "CLUSTER"

// Manager ties an engine to its data directory. Obtain the engine with
// Engine(); all reads and commits go through it as usual — the Manager
// intercepts commits via the engine's CommitSink.
type Manager struct {
	dir  string
	opts Options
	eng  *core.Engine
	log  *wal.Log

	// Disk-store state (nil/zero for StoreMemory): the node store whose
	// Flush is the incremental-checkpoint primitive, and the VLOG holding
	// the persisted demoted-version index.
	storeKind StoreKind
	nodes     *cas.Disk
	vlog      *vlog
	ckptCrash func(stage string) bool // test hook: true aborts checkpointDisk after stage

	// seqOff maps ledger heights to WAL sequence numbers: every record is
	// exactly one block, appended in ledger order, so seq(h) = h + seqOff
	// for the log's whole lineage. Computed once at open (modular uint64
	// arithmetic keeps it valid even for logs that postdate checkpoints).
	seqOff uint64

	sinceCkpt atomic.Uint64 // commits since the last durable checkpoint

	ckptMu     sync.Mutex // serializes checkpoints
	ckptHeight uint64     // height covered by the newest durable checkpoint

	closing   chan struct{}
	loopDone  chan struct{}
	ckptPoke  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Open opens (creating if needed) the database in dir and recovers it:
// restore the newest checkpoint, replay the WAL tail with per-block hash
// verification, and resume logging. A torn final WAL record — the
// signature of a crash mid-append — is truncated; any other damage is a
// hard error.
func Open(dir string, opts Options) (*Manager, error) {
	if opts.CheckpointInterval == 0 && opts.CheckpointEveryBlocks == 0 {
		opts.CheckpointInterval = time.Minute
		opts.CheckpointEveryBlocks = 4096
	}
	if opts.CheckpointInterval < 0 {
		// Documented kill switch: no automatic checkpoints of any kind,
		// including block-count-triggered ones.
		opts.CheckpointEveryBlocks = 0
	}
	// A sharded cluster directory (internal/server) nests one durable
	// layout per shard; opening its top level as a single-engine database
	// would silently ignore every shard's data.
	if _, err := os.Stat(filepath.Join(dir, ClusterMarkerName)); err == nil {
		return nil, fmt.Errorf("durable: %s holds a sharded cluster; open it with OpenCluster (or spitz-server -shards)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	kind, err := resolveStoreKind(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	if kind == StoreDisk {
		return openDisk(dir, opts)
	}
	for _, d := range []string{dir, filepath.Join(dir, walDirName), filepath.Join(dir, ckptDirName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	ckptName, _, haveCkpt, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, walDirName), wal.Options{
		Policy:      opts.Sync,
		Interval:    opts.SyncInterval,
		SegmentSize: opts.SegmentSize,
	})
	if err != nil {
		return nil, err
	}

	// Decode the whole WAL tail up front: its length is bounded by the
	// checkpoint cadence, and knowing the records before building the
	// engine keeps recovery a single forward pass.
	var recs []core.CommitRecord
	if err := log.Replay(func(seq uint64, payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal record %d: %w", seq, err)
		}
		recs = append(recs, rec)
		return nil
	}); err != nil {
		log.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}

	var orc TimestampSource = opts.Timestamps
	if orc == nil {
		orc = tso.New(0)
	}
	copts := core.Options{
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
		Timestamps:       orc,
		MaxBatchTxns:     opts.MaxBatchTxns,
		MaxBatchDelay:    opts.MaxBatchDelay,
	}
	var eng *core.Engine
	if haveCkpt {
		path := filepath.Join(dir, ckptDirName, ckptName)
		f, err := os.Open(path)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("durable: manifest names missing checkpoint: %w", err)
		}
		eng, err = core.Restore(copts, bufio.NewReader(f))
		f.Close()
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("durable: restore checkpoint %s: %w", ckptName, err)
		}
	} else {
		eng = core.New(copts)
	}
	if h, ok := eng.Ledger().Head(); ok {
		orc.Advance(h.Version)
	}

	height, replayed, err := replayTail(eng, orc, recs)
	if err != nil {
		log.Close()
		return nil, err
	}

	m := &Manager{
		dir:      dir,
		opts:     opts,
		eng:      eng,
		log:      log,
		seqOff:   log.NextSeq() - height,
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		ckptPoke: make(chan struct{}, 1),
	}
	if haveCkpt {
		// The checkpoint may cover more blocks than its manifest height
		// (commits racing the snapshot); what matters is it covers at
		// least everything below the restored height minus the replay.
		m.ckptHeight = height - uint64(replayed)
	}
	m.sinceCkpt.Store(uint64(replayed))
	eng.SetCommitSink(m)
	if opts.CheckpointInterval > 0 || opts.CheckpointEveryBlocks > 0 {
		go m.checkpointLoop()
	} else {
		close(m.loopDone)
	}
	return m, nil
}

// replayTail re-commits the WAL records above the engine's recovered
// height, verifying each block hash, and advances the timestamp oracle
// past every replayed version. Records below the recovered height are
// duplicates the checkpoint already covers; a gap above it is fatal.
func replayTail(eng *core.Engine, orc TimestampSource, recs []core.CommitRecord) (height uint64, replayed int, err error) {
	height = eng.Ledger().Height()
	for _, rec := range recs {
		if rec.Height < height {
			continue // already inside the checkpoint
		}
		if rec.Height > height {
			return 0, 0, fmt.Errorf("durable: wal gap: next logged block is %d but engine is at height %d",
				rec.Height, height)
		}
		if _, err := eng.ReplayBlock(rec); err != nil {
			return 0, 0, fmt.Errorf("durable: %w", err)
		}
		orc.Advance(rec.Version)
		height++
		replayed++
	}
	return height, replayed, nil
}

// Engine returns the recovered engine. All queries and commits go through
// it; commits are durably logged before they are acknowledged.
func (m *Manager) Engine() *core.Engine { return m.eng }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Log exposes the underlying write-ahead log. Replication reads committed
// frames from it (internal/repl); everything else should go through the
// engine.
func (m *Manager) Log() *wal.Log { return m.log }

// SeqForHeight returns the WAL sequence number of the block at height h.
func (m *Manager) SeqForHeight(h uint64) uint64 { return h + m.seqOff }

// HeightForSeq returns the ledger height of the block in WAL record s.
func (m *Manager) HeightForSeq(s uint64) uint64 { return s - m.seqOff }

// WALStats summarizes the write-ahead log for observability: how much of
// the ledger is durable and what span of it the retained log still holds
// (everything older lives only in checkpoints).
type WALStats struct {
	// DurableHeight is the number of leading ledger blocks known durable
	// (fsynced) in the log.
	DurableHeight uint64
	// LoggedHeight is the number of blocks written to the log (they may
	// still be awaiting an fsync under the weaker sync policies).
	LoggedHeight uint64
	// OldestRetainedHeight is the height of the first block still present
	// in the retained log; replication followers at or above it resume
	// from the log, older ones need a snapshot.
	OldestRetainedHeight uint64
	// Segments and RetainedBytes size the retained log on disk.
	Segments      int
	RetainedBytes int64
}

// WALStats returns a point-in-time summary of the write-ahead log.
func (m *Manager) WALStats() WALStats {
	info := m.log.Info()
	return WALStats{
		DurableHeight:        m.HeightForSeq(info.SyncedSeq + 1),
		LoggedHeight:         m.HeightForSeq(info.AppendedSeq + 1),
		OldestRetainedHeight: m.HeightForSeq(info.OldestSeq),
		Segments:             info.Segments,
		RetainedBytes:        info.RetainedBytes,
	}
}

// CheckpointHeight returns the block height covered by the newest durable
// checkpoint (0 when none has been taken).
func (m *Manager) CheckpointHeight() uint64 {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return m.ckptHeight
}

// Append implements core.CommitSink: frame the block into the WAL. It is
// called with the engine lock held, so records land in ledger order; the
// returned wait blocks (outside the lock) until the record is durable
// under the configured sync policy.
func (m *Manager) Append(rec core.CommitRecord) (func() error, error) {
	_, wait, err := m.log.AppendAsync(EncodeRecord(rec))
	if err != nil {
		return nil, err
	}
	if n := m.sinceCkpt.Add(1); m.opts.CheckpointEveryBlocks > 0 && n >= m.opts.CheckpointEveryBlocks {
		select {
		case m.ckptPoke <- struct{}{}:
		default:
		}
	}
	return wait, nil
}

func (m *Manager) checkpointLoop() {
	defer close(m.loopDone)
	var tick <-chan time.Time
	if m.opts.CheckpointInterval > 0 {
		t := time.NewTicker(m.opts.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-m.closing:
			return
		case <-tick:
		case <-m.ckptPoke:
		}
		// Background failures are deliberately swallowed: the WAL still
		// holds everything, so durability is not reduced — the next
		// checkpoint (or a manual one, which reports errors) retries.
		_ = m.Checkpoint()
	}
}

// Checkpoint makes everything committed so far recoverable without the
// WAL tail, then prunes WAL segments that became redundant. For
// StoreMemory it streams a full engine snapshot and repoints the
// MANIFEST at it; for StoreDisk it is incremental — flush dirty nodes,
// persist new demotions, record the head root (see checkpointDisk).
// Safe to call at any time, concurrently with commits.
func (m *Manager) Checkpoint() error {
	if m.storeKind == StoreDisk {
		return m.checkpointDisk()
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	height := m.eng.Ledger().Height()
	if height == 0 || height == m.ckptHeight {
		return nil
	}
	// Sample the WAL position before the snapshot: every record below
	// keepSeq was committed before the snapshot began and is therefore
	// covered by it. Records at or above keepSeq may or may not be —
	// recovery skips duplicates by height, so keeping them is safe.
	keepSeq := m.log.NextSeq()

	ckptDir := filepath.Join(m.dir, ckptDirName)
	name := fmt.Sprintf(ckptNameFormat, height)
	tmp := filepath.Join(ckptDir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := m.eng.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: checkpoint snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(ckptDir, name)); err != nil {
		return err
	}
	if err := wal.SyncDir(ckptDir); err != nil {
		return err
	}
	if err := writeManifest(m.dir, name, height); err != nil {
		return err
	}
	m.ckptHeight = height
	m.sinceCkpt.Store(0)

	// The MANIFEST now points at the new checkpoint; everything older is
	// garbage. Failures below cost only disk space, not correctness.
	entries, err := os.ReadDir(ckptDir)
	if err == nil {
		for _, e := range entries {
			if e.Name() != name && !e.IsDir() {
				os.Remove(filepath.Join(ckptDir, e.Name()))
			}
		}
	}
	return m.log.PruneTo(keepSeq)
}

// Close flushes and closes the WAL and stops background checkpointing.
// The engine remains readable but further commits will fail; callers
// should quiesce writers first.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		close(m.closing)
		<-m.loopDone
		m.closeErr = m.log.Close()
		if m.vlog != nil {
			if err := m.vlog.Close(); err != nil && m.closeErr == nil {
				m.closeErr = err
			}
		}
		if m.nodes != nil {
			// Close flushes the write-back set; data not yet named by the
			// MANIFEST is still recovered from the WAL on reopen.
			if err := m.nodes.Close(); err != nil && m.closeErr == nil {
				m.closeErr = err
			}
		}
	})
	return m.closeErr
}

// readManifest parses <dir>/MANIFEST. ok is false when none exists yet.
func readManifest(dir string) (ckptName string, height uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return "", 0, false, nil
	}
	if err != nil {
		return "", 0, false, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 || lines[0] != manifestMagic {
		return "", 0, false, fmt.Errorf("durable: bad manifest magic in %s", dir)
	}
	for _, line := range lines[1:] {
		var key, val string
		if n, _ := fmt.Sscanf(line, "%s %s", &key, &val); n != 2 {
			continue
		}
		switch key {
		case "checkpoint":
			ckptName = val
		case "height":
			fmt.Sscanf(val, "%d", &height)
		}
	}
	if ckptName == "" {
		return "", 0, false, fmt.Errorf("durable: manifest in %s names no checkpoint", dir)
	}
	if strings.ContainsAny(ckptName, "/\\") {
		return "", 0, false, fmt.Errorf("durable: manifest checkpoint name %q escapes directory", ckptName)
	}
	return ckptName, height, true, nil
}

// writeManifest atomically replaces <dir>/MANIFEST (tmp + rename + dir
// fsync), so a crash leaves either the old or the new manifest, never a
// torn one.
func writeManifest(dir, ckptName string, height uint64) error {
	return writeManifestBody(dir, fmt.Sprintf("%s\ncheckpoint %s\nheight %d\n", manifestMagic, ckptName, height))
}

func writeManifestBody(dir, body string) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(body); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return wal.SyncDir(dir)
}

// Compile-time interface check.
var _ core.CommitSink = (*Manager)(nil)
