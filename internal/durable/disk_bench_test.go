package durable

import (
	"fmt"
	"testing"

	"spitz/internal/core"
	"spitz/internal/wal"
)

// buildBenchDB populates a database with nKeys cells of valSize bytes,
// batch puts per block, then checkpoints and closes it. The directory is
// then ready for reopen benchmarks.
func buildBenchDB(b *testing.B, dir string, opts Options, nKeys, valSize, batch int) {
	b.Helper()
	m, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, valSize)
	for i := 0; i < nKeys; i += batch {
		puts := make([]core.Put, 0, batch)
		for j := i; j < i+batch && j < nKeys; j++ {
			puts = append(puts, core.Put{Table: "t", Column: "c",
				PK: []byte(fmt.Sprintf("key-%08d", j)), Value: val})
		}
		if _, err := m.Engine().Apply("load", puts); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	if err := m.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkColdRestart measures restart-to-first-verified-read: open a
// checkpointed database and serve one proof-carrying read. The memory
// store pays O(state) — the whole snapshot streams back through content
// addressing before any read — while the disk store opens by root hash:
// O(height) header reads plus the one O(log n) proof path it actually
// serves. The gap widens linearly with database size.
func BenchmarkColdRestart(b *testing.B) {
	const nKeys, valSize, batch = 20000, 256, 200
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"mem-snapshot-replay", noAutoCkpt(Options{Sync: wal.SyncAlways})},
		{"disk-root-addressed", diskOpts(Options{Sync: wal.SyncAlways, NodeCacheMB: 16})},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			dir := b.TempDir()
			buildBenchDB(b, dir, cfg.opts, nKeys, valSize, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := Open(dir, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Engine().GetVerified("t", "c", []byte("key-00004242"))
				if err != nil || !res.Found {
					b.Fatalf("first verified read: found=%v err=%v", res.Found, err)
				}
				b.StopTimer()
				m.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDiskWorkingSet reads uniformly across a keyspace whose
// resident bytes exceed the node-cache budget by >10x, so most proof
// paths fault in from segment files; the memory store serves the same
// workload entirely from RAM as the ceiling. Every read is verified —
// an audit failure fails the benchmark. hit% reports the node cache's
// observed hit rate under the pressure.
func BenchmarkDiskWorkingSet(b *testing.B) {
	// ~12k keys x 1KiB values plus tree nodes ≈ 14MiB working set
	// against the 1MiB minimum cache budget.
	const nKeys, valSize, batch = 12000, 1024, 200
	run := func(b *testing.B, m *Manager) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			k := (uint64(i)*1103515245 + 12345) % nKeys
			res, err := m.Engine().GetVerified("t", "c", []byte(fmt.Sprintf("key-%08d", k)))
			if err != nil || !res.Found {
				b.Fatalf("verified read %d: found=%v err=%v", k, res.Found, err)
			}
		}
	}
	b.Run("disk-cache=1MiB", func(b *testing.B) {
		dir := b.TempDir()
		opts := diskOpts(Options{Sync: wal.SyncAlways, NodeCacheMB: 1})
		buildBenchDB(b, dir, opts, nKeys, valSize, batch)
		m, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		b.ResetTimer()
		run(b, m)
		cs := m.NodeStore().CacheStats()
		b.ReportMetric(100*cs.HitRate(), "hit%")
	})
	b.Run("mem-unbounded", func(b *testing.B) {
		dir := b.TempDir()
		opts := noAutoCkpt(Options{Sync: wal.SyncAlways})
		buildBenchDB(b, dir, opts, nKeys, valSize, batch)
		m, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		b.ResetTimer()
		run(b, m)
	})
}
