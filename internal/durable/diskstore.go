package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spitz/internal/cas"
	"spitz/internal/core"
	"spitz/internal/hashutil"
	"spitz/internal/ledger"
	"spitz/internal/txn/tso"
	"spitz/internal/wal"
)

// StoreKind selects the node-store backend for a durable database.
type StoreKind int

const (
	// StoreMemory keeps the CAS in RAM; durability comes from the WAL
	// plus full-snapshot checkpoints. The default, and the right choice
	// while the working set fits in memory.
	StoreMemory StoreKind = iota
	// StoreDisk backs the CAS with append-only segment files behind a
	// bounded write-back cache. Checkpoints flush only dirty nodes and a
	// root pointer (incremental commit), and reopen addresses state by
	// root hash instead of replaying it — restart cost is O(height)
	// headers + O(path) per first read, not O(state).
	StoreDisk
)

// String implements fmt.Stringer.
func (k StoreKind) String() string {
	if k == StoreDisk {
		return "disk"
	}
	return "mem"
}

// ParseStoreKind parses the -store flag values "mem" and "disk".
func ParseStoreKind(s string) (StoreKind, error) {
	switch s {
	case "mem", "memory", "":
		return StoreMemory, nil
	case "disk":
		return StoreDisk, nil
	}
	return 0, fmt.Errorf("durable: unknown store kind %q (want mem or disk)", s)
}

var errCkptCrashed = fmt.Errorf("durable: simulated checkpoint crash")

const (
	storeMarkerName = "STORE"
	storeMarkerBody = "spitz-store-v1\ndisk\n"
	nodesDirName    = "nodes"
	vlogName        = "VLOG"
)

// resolveStoreKind decides which backend a directory uses. The STORE
// marker (written once at creation) is authoritative: a disk-store
// database reopens as disk no matter what the caller asked for, and a
// directory holding memory-store state refuses a disk request instead of
// silently abandoning the data.
func resolveStoreKind(dir string, req StoreKind) (StoreKind, error) {
	data, err := os.ReadFile(filepath.Join(dir, storeMarkerName))
	if err == nil {
		if string(data) == storeMarkerBody {
			return StoreDisk, nil
		}
		return 0, fmt.Errorf("durable: unrecognized STORE marker in %s", dir)
	}
	if !os.IsNotExist(err) {
		return 0, err
	}
	if req != StoreDisk {
		return StoreMemory, nil
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return 0, fmt.Errorf("durable: %s already holds a memory-store database; it cannot reopen with -store disk", dir)
	}
	if ents, err := os.ReadDir(filepath.Join(dir, walDirName)); err == nil && len(ents) > 0 {
		return 0, fmt.Errorf("durable: %s already holds a memory-store database; it cannot reopen with -store disk", dir)
	}
	if err := writeStoreMarker(dir); err != nil {
		return 0, err
	}
	return StoreDisk, nil
}

func writeStoreMarker(dir string) error {
	path := filepath.Join(dir, storeMarkerName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(storeMarkerBody); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return wal.SyncDir(dir)
}

// diskManifest is the parsed disk-mode MANIFEST: the root address of the
// durable state. height blocks are durable; head is the hash of block
// height-1 (the header chain walks backward from it through the CAS);
// maxtxn is a transaction-ID floor for recovered engines.
type diskManifest struct {
	height uint64
	head   hashutil.Digest
	maxTxn uint64
	ok     bool
}

func readDiskManifest(dir string) (diskManifest, error) {
	var m diskManifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 || lines[0] != manifestMagic {
		return m, fmt.Errorf("durable: bad manifest magic in %s", dir)
	}
	var store, headHex string
	for _, line := range lines[1:] {
		var key, val string
		if n, _ := fmt.Sscanf(line, "%s %s", &key, &val); n != 2 {
			continue
		}
		switch key {
		case "store":
			store = val
		case "height":
			fmt.Sscanf(val, "%d", &m.height)
		case "head":
			headHex = val
		case "maxtxn":
			fmt.Sscanf(val, "%d", &m.maxTxn)
		}
	}
	if store != "disk" {
		return m, fmt.Errorf("durable: manifest in %s is not a disk-store manifest", dir)
	}
	if m.height > 0 {
		d, err := hashutil.Parse(headHex)
		if err != nil {
			return m, fmt.Errorf("durable: manifest head: %w", err)
		}
		m.head = d
	}
	m.ok = true
	return m, nil
}

func writeDiskManifest(dir string, height uint64, head hashutil.Digest, maxTxn uint64) error {
	body := fmt.Sprintf("%s\nstore disk\nheight %d\nhead %s\nmaxtxn %d\n",
		manifestMagic, height, head.String(), maxTxn)
	return writeManifestBody(dir, body)
}

// walkHeaders recovers the block-header chain by following parent hashes
// backward from the head: a header's hash is its CAS address (both are
// Sum(DomainBlock, Encode())), so the chain needs no index of its own.
// Each hop is an O(1) store read of an ~140-byte object, and every
// header is verified to hash to the address it was fetched from.
func walkHeaders(store cas.Store, head hashutil.Digest, height uint64) ([]ledger.BlockHeader, error) {
	headers := make([]ledger.BlockHeader, height)
	want := head
	for i := height; i > 0; i-- {
		if want.IsZero() {
			return nil, fmt.Errorf("durable: header chain ends at height %d of %d", i, height)
		}
		body, err := store.Get(want)
		if err != nil {
			return nil, fmt.Errorf("durable: block %d header: %w", i-1, err)
		}
		h, err := ledger.DecodeHeader(body)
		if err != nil {
			return nil, fmt.Errorf("durable: block %d header: %w", i-1, err)
		}
		if h.Hash() != want {
			return nil, fmt.Errorf("durable: block %d header does not hash to its address", i-1)
		}
		if h.Height != i-1 {
			return nil, fmt.Errorf("durable: header at address %s carries height %d, want %d",
				want.Short(), h.Height, i-1)
		}
		headers[i-1] = h
		want = h.Parent
	}
	if !want.IsZero() {
		return nil, fmt.Errorf("durable: genesis parent is not zero")
	}
	return headers, nil
}

// openDisk is the disk-store recovery path: open the node store, walk the
// header chain from the manifest's head hash, load the VLOG version
// index, rebuild the ledger lazily at its cell root, and replay the WAL
// tail on top. No snapshot is read and no state is scanned — the first
// verified read after this faults in only the O(log n) proof path.
func openDisk(dir string, opts Options) (*Manager, error) {
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		return nil, err
	}
	man, err := readDiskManifest(dir)
	if err != nil {
		return nil, err
	}
	nodes, err := cas.OpenDisk(filepath.Join(dir, nodesDirName), cas.DiskOptions{
		CacheBytes: int64(opts.NodeCacheMB) << 20,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Manager, error) {
		nodes.Close()
		return nil, err
	}

	log, err := wal.Open(filepath.Join(dir, walDirName), wal.Options{
		Policy:      opts.Sync,
		Interval:    opts.SyncInterval,
		SegmentSize: opts.SegmentSize,
	})
	if err != nil {
		return fail(err)
	}
	failLog := func(err error) (*Manager, error) {
		log.Close()
		return fail(err)
	}
	var recs []core.CommitRecord
	if err := log.Replay(func(seq uint64, payload []byte) error {
		// Records the manifest already covers replay as no-ops; peeking
		// the height skips their body decode entirely, keeping a clean
		// restart's WAL cost proportional to the tail, not the log.
		if h, err := DecodeRecordHeight(payload); err == nil && h < man.height {
			return nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal record %d: %w", seq, err)
		}
		recs = append(recs, rec)
		return nil
	}); err != nil {
		return failLog(fmt.Errorf("durable: %w", err))
	}

	vl, demos, err := openVLog(filepath.Join(dir, vlogName))
	if err != nil {
		return failLog(err)
	}
	failAll := func(err error) (*Manager, error) {
		vl.Close()
		return failLog(err)
	}

	var orc TimestampSource = opts.Timestamps
	if orc == nil {
		orc = tso.New(0)
	}
	copts := core.Options{
		Store:            nodes,
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
		Timestamps:       orc,
		MaxBatchTxns:     opts.MaxBatchTxns,
		MaxBatchDelay:    opts.MaxBatchDelay,
		LazyIndex:        true,
	}
	var eng *core.Engine
	if man.ok && man.height > 0 {
		headers, err := walkHeaders(nodes, man.head, man.height)
		if err != nil {
			return failAll(err)
		}
		l, err := ledger.Reopen(nodes, headers, demos)
		if err != nil {
			return failAll(err)
		}
		eng, err = core.NewWithLedger(copts, l, man.maxTxn)
		if err != nil {
			return failAll(err)
		}
	} else {
		eng = core.New(copts)
		eng.Ledger().EnableDemotionLog()
	}
	if h, ok := eng.Ledger().Head(); ok {
		orc.Advance(h.Version)
	}

	height, replayed, err := replayTail(eng, orc, recs)
	if err != nil {
		return failAll(err)
	}

	m := &Manager{
		dir:       dir,
		opts:      opts,
		eng:       eng,
		log:       log,
		storeKind: StoreDisk,
		nodes:     nodes,
		vlog:      vl,
		seqOff:    log.NextSeq() - height,
		closing:   make(chan struct{}),
		loopDone:  make(chan struct{}),
		ckptPoke:  make(chan struct{}, 1),
	}
	if man.ok {
		m.ckptHeight = man.height
	}
	m.sinceCkpt.Store(uint64(replayed))
	eng.SetCommitSink(m)
	if opts.CheckpointInterval > 0 || opts.CheckpointEveryBlocks > 0 {
		go m.checkpointLoop()
	} else {
		close(m.loopDone)
	}
	return m, nil
}

// checkpointDisk is the incremental checkpoint: append new demotions to
// the VLOG, flush dirty nodes (only bytes written since the last flush),
// and atomically repoint the MANIFEST at the new head. No snapshot is
// streamed; the sequencing makes a crash at any point recover to either
// the old root or the new one, never between.
func (m *Manager) checkpointDisk() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if err := m.nodes.Err(); err != nil {
		return fmt.Errorf("durable: node store failed: %w", err)
	}
	height := m.eng.Ledger().Height()
	if height == 0 || height == m.ckptHeight {
		return nil
	}
	keepSeq := m.log.NextSeq()
	head, err := m.eng.Ledger().Header(height - 1)
	if err != nil {
		return err
	}
	maxTxn := m.eng.NextTxnID()
	// Demotions sampled after height may belong to later blocks; replay
	// after a crash re-demotes them and the version index deduplicates.
	demos := m.eng.Ledger().PendingDemotions()
	if err := m.vlog.append(demos); err != nil {
		return err
	}
	if m.ckptCrash != nil && m.ckptCrash("vlog") {
		return errCkptCrashed
	}
	if err := m.nodes.Flush(); err != nil {
		return fmt.Errorf("durable: flush node store: %w", err)
	}
	if m.ckptCrash != nil && m.ckptCrash("flush") {
		return errCkptCrashed
	}
	if err := writeDiskManifest(m.dir, height, head.Hash(), maxTxn); err != nil {
		return err
	}
	m.eng.Ledger().ClearDemotions(len(demos))
	m.ckptHeight = height
	m.sinceCkpt.Store(0)
	return m.log.PruneTo(keepSeq)
}

// NodeStore returns the disk-backed node store, or nil for memory-store
// databases. Benchmarks and tests read its cache statistics.
func (m *Manager) NodeStore() *cas.Disk { return m.nodes }

// StoreKind reports which node-store backend this database uses.
func (m *Manager) StoreKind() StoreKind { return m.storeKind }
