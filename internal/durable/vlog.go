package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"spitz/internal/hashutil"
	"spitz/internal/ledger"
)

// The VLOG persists the ledger's demoted-version index for disk-store
// databases. The cell tree only holds head versions; superseded versions
// live as out-of-band CAS objects that nothing reachable from the head
// root references, so a root-addressed reopen would lose GetAsOf/History
// without this sidecar. Each checkpoint appends the demotions since the
// previous one as a single CRC-framed record:
//
//	frame   := len u32 LE | crc u32 LE | payload      (crc is CRC-32C of payload)
//	payload := count uvarint | entry*
//	entry   := refLen uvarint | ref | version uvarint | object [32]byte
//
// Recovery reads every frame; a torn final frame (crash mid-append) is
// truncated, any other damage is a hard error. Entries may duplicate
// demotions that the WAL tail will replay — the ledger's version index
// deduplicates on insert — so the append-then-manifest ordering is safe
// under a crash at any point.
type vlog struct {
	path string
	f    *os.File
}

const maxVLogFrame = 1 << 28

var vlogCRCTable = crc32.MakeTable(crc32.Castagnoli)

// openVLog loads every persisted entry and returns an appender
// positioned after the last whole frame.
func openVLog(path string) (*vlog, []ledger.VersionEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("durable: read vlog: %w", err)
	}
	var entries []ledger.VersionEntry
	pos := 0
	for pos+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		crc := binary.LittleEndian.Uint32(data[pos+4:])
		if n > maxVLogFrame || pos+8+n > len(data) {
			break // torn tail
		}
		payload := data[pos+8 : pos+8+n]
		if crc32.Checksum(payload, vlogCRCTable) != crc {
			break // torn tail
		}
		dec, err := decodeVLogFrame(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: vlog frame at %d: %w", pos, err)
		}
		entries = append(entries, dec...)
		pos += 8 + n
	}
	if pos < len(data) {
		// A torn final frame is the crash-mid-append signature; everything
		// before it is intact.
		if err := os.Truncate(path, int64(pos)); err != nil {
			return nil, nil, fmt.Errorf("durable: truncate torn vlog: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open vlog: %w", err)
	}
	return &vlog{path: path, f: f}, entries, nil
}

func decodeVLogFrame(payload []byte) ([]ledger.VersionEntry, error) {
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("bad entry count")
	}
	rest := payload[k:]
	out := make([]ledger.VersionEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		refLen, k1 := binary.Uvarint(rest)
		if k1 <= 0 || uint64(len(rest)-k1) < refLen {
			return nil, fmt.Errorf("bad ref length")
		}
		ref := append([]byte(nil), rest[k1:k1+int(refLen)]...)
		rest = rest[k1+int(refLen):]
		version, k2 := binary.Uvarint(rest)
		if k2 <= 0 || len(rest)-k2 < hashutil.DigestSize {
			return nil, fmt.Errorf("bad version entry")
		}
		var obj hashutil.Digest
		copy(obj[:], rest[k2:])
		rest = rest[k2+hashutil.DigestSize:]
		out = append(out, ledger.VersionEntry{Ref: ref, Version: version, Object: obj})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing frame bytes")
	}
	return out, nil
}

// append durably writes one frame carrying the given entries (no-op for
// an empty batch). The fsync here is what lets the checkpoint manifest
// assume the version index is on disk.
func (v *vlog) append(entries []ledger.VersionEntry) error {
	if len(entries) == 0 {
		return nil
	}
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(entries)))
	for _, e := range entries {
		payload = binary.AppendUvarint(payload, uint64(len(e.Ref)))
		payload = append(payload, e.Ref...)
		payload = binary.AppendUvarint(payload, e.Version)
		payload = append(payload, e.Object[:]...)
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, vlogCRCTable))
	frame = append(frame, payload...)
	if _, err := v.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append vlog: %w", err)
	}
	if err := v.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync vlog: %w", err)
	}
	return nil
}

func (v *vlog) Close() error { return v.f.Close() }
