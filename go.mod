module spitz

go 1.22
