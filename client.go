package spitz

import (
	"errors"
	"fmt"
	"io"

	"spitz/internal/wire"
)

// Client is a network client for a served Spitz database. It embeds a
// Verifier so that verified reads check proofs against the client's own
// trusted digest — the server is never trusted with verification.
type Client struct {
	c        *wire.Client
	verifier *Verifier
}

// Dial connects to a Spitz server (e.g. started with DB.Serve or
// cmd/spitz-server).
func Dial(network, addr string) (*Client, error) {
	c, err := wire.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, verifier: NewVerifier()}, nil
}

// Close releases the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Verifier exposes the client's proof verifier (for inspecting the
// trusted digest or deferring verification).
func (cl *Client) Verifier() *Verifier { return cl.verifier }

// Apply commits a batch of writes and returns the new block header.
func (cl *Client) Apply(statement string, puts []Put) (BlockHeader, error) {
	wp := make([]wire.Put, len(puts))
	for i, p := range puts {
		wp[i] = wire.Put{Table: p.Table, Column: p.Column, PK: p.PK,
			Value: p.Value, Tombstone: p.Tombstone}
	}
	resp, err := cl.c.Do(wire.Request{Op: wire.OpPut, Statement: statement, Puts: wp})
	if err != nil {
		return BlockHeader{}, err
	}
	return resp.Header, nil
}

// Get performs an unverified point read.
func (cl *Client) Get(table, column string, pk []byte) ([]byte, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpGet, Table: table, Column: column, PK: pk})
	if err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// GetVerified performs a verified point read: the proof is fetched,
// checked against the client's trusted digest (advancing it with a
// consistency proof when the ledger has grown), and the value is returned
// only if everything verifies.
func (cl *Client) GetVerified(table, column string, pk []byte) ([]byte, bool, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpGetVerified, Table: table, Column: column, PK: pk})
	if err != nil {
		return nil, false, err
	}
	if resp.Proof == nil {
		if resp.Found {
			return nil, false, fmt.Errorf("%w: server omitted proof", ErrTampered)
		}
		return nil, false, nil // empty database
	}
	if err := cl.syncDigest(resp.Digest); err != nil {
		return nil, false, err
	}
	if err := cl.verifier.VerifyNow(*resp.Proof); err != nil {
		return nil, false, err
	}
	cells, err := resp.Proof.Cells()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if len(cells) == 0 || cells[0].Tombstone {
		if resp.Found {
			return nil, false, fmt.Errorf("%w: result contradicts proof", ErrTampered)
		}
		return nil, false, nil
	}
	return cells[0].Value, true, nil
}

// RangePKVerified performs a verified range scan, returning the proven
// cells.
func (cl *Client) RangePKVerified(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpRangeVer, Table: table, Column: column,
		PK: pkLo, PKHi: pkHi})
	if err != nil {
		return nil, err
	}
	if resp.Proof == nil {
		if len(resp.Cells) > 0 {
			return nil, fmt.Errorf("%w: server omitted proof", ErrTampered)
		}
		return nil, nil
	}
	if err := cl.syncDigest(resp.Digest); err != nil {
		return nil, err
	}
	if err := cl.verifier.VerifyNow(*resp.Proof); err != nil {
		return nil, err
	}
	cells, err := resp.Proof.Cells()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	live := cells[:0]
	for _, c := range cells {
		if !c.Tombstone {
			live = append(live, c)
		}
	}
	return live, nil
}

// History returns all versions of a cell, newest first.
func (cl *Client) History(table, column string, pk []byte) ([]Cell, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpHistory, Table: table, Column: column, PK: pk})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Snapshot streams a full snapshot of the server's database to w — the
// operator-facing way to take a checkpoint by hand (spitz-cli snapshot).
// The stream is WriteSnapshot's format and can be loaded with Restore,
// ResetFromSnapshot, or Client.Restore.
func (cl *Client) Snapshot(w io.Writer) error {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpSnapshot})
	if err != nil {
		return err
	}
	_, err = w.Write(resp.Value)
	return err
}

// Restore replaces the server's entire state with the given snapshot
// stream (a file written by Snapshot or WriteSnapshot). The server
// validates the snapshot exactly like a local Restore — a tampered file
// is rejected. Only in-memory servers accept restores; durable servers
// own their state. The returned digest is the restored ledger's; any
// previously saved digests refer to the replaced history and must be
// discarded, so this client's verifier is reset to trust-on-first-use.
func (cl *Client) Restore(snapshot []byte) (Digest, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpRestore, Snapshot: snapshot})
	if err != nil {
		return Digest{}, err
	}
	cl.verifier = NewVerifier()
	return resp.Digest, nil
}

// Digest fetches the server's current ledger digest (unverified; use
// SyncDigest to advance trust safely).
func (cl *Client) Digest() (Digest, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpDigest})
	if err != nil {
		return Digest{}, err
	}
	return resp.Digest, nil
}

// SyncDigest advances the client's trusted digest to the server's current
// one, verifying a consistency proof so a rewritten history is rejected.
func (cl *Client) SyncDigest() error {
	d, err := cl.Digest()
	if err != nil {
		return err
	}
	return cl.syncDigest(d)
}

func (cl *Client) syncDigest(d Digest) error {
	cur := cl.verifier.Digest()
	if cur == d {
		return nil
	}
	if cur.Height == 0 && cur.Root.IsZero() {
		return cl.verifier.Advance(d, ConsistencyProof{})
	}
	resp, err := cl.c.Do(wire.Request{Op: wire.OpConsistency, OldDigest: cur})
	if err != nil {
		return err
	}
	if resp.Consistency == nil {
		return errors.New("spitz: server omitted consistency proof")
	}
	return cl.verifier.Advance(resp.Digest, *resp.Consistency)
}
