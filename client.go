package spitz

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"spitz/internal/cellstore"
	"spitz/internal/obs"
	"spitz/internal/server"
	"spitz/internal/wire"
)

// Client is a network client for a served Spitz database. It embeds a
// Verifier so that verified reads check proofs against the client's own
// trusted digest — the server is never trusted with verification.
type Client struct {
	c        *wire.Client
	verifier *Verifier
	syncMu   sync.Mutex // serializes digest refreshes (see shardLink.syncDigest)
	auditHolder
}

// Dial connects to a Spitz server (e.g. started with DB.Serve or
// cmd/spitz-server).
func Dial(network, addr string) (*Client, error) {
	c, err := wire.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established wire connection (wire.Connect over a
// listener, wire.Dial, or an in-process pipe) — the transport-agnostic
// form Dial wraps.
func NewClient(c *wire.Client) *Client {
	return &Client{c: c, verifier: NewVerifier()}
}

// Close releases the connection. If AuditMode is active the auditor is
// closed first; its final flush error (unverified receipts are a
// failure) is returned.
func (cl *Client) Close() error {
	auditErr := cl.closeAudit()
	if err := cl.c.Close(); err != nil {
		return err
	}
	return auditErr
}

// StartAudit switches the client into deferred verification: verified
// reads are accepted optimistically and batch-audited in the background
// (see AuditMode). The returned Auditor owns the audit channel and the
// flush barrier. Audit can be started once per client.
func (cl *Client) StartAudit(mode AuditMode) (*Auditor, error) {
	return cl.startAudit(mode, func(int) shardLink { return cl.link() })
}

// Verifier exposes the client's proof verifier (for inspecting the
// trusted digest or deferring verification).
func (cl *Client) Verifier() *Verifier { return cl.verifier }

// link binds the client's connection and verifier into the shared
// verified-read flows.
func (cl *Client) link() shardLink {
	return shardLink{c: cl.c, v: cl.verifier, mu: &cl.syncMu}
}

// Apply commits a batch of writes and returns the new block header.
func (cl *Client) Apply(statement string, puts []Put) (BlockHeader, error) {
	tr := obs.DefaultTracer.Root("client.apply", "client")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpPut, Statement: statement, Puts: encodePuts(puts)}
	req.SetTrace(tr)
	resp, err := cl.c.Do(req)
	if err != nil {
		return BlockHeader{}, err
	}
	return resp.Header, nil
}

// Get performs an unverified point read.
func (cl *Client) Get(table, column string, pk []byte) ([]byte, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpGet, Table: table, Column: column, PK: pk})
	if err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// GetVerified performs a verified point read: the proof is fetched,
// checked against the client's trusted digest (advancing it with a
// consistency proof when the ledger has grown), and the value is returned
// only if everything verifies. Under AuditMode (StartAudit) the read is
// instead accepted optimistically and verified in batch before the
// receipt horizon; tampering then surfaces on the audit channel.
func (cl *Client) GetVerified(table, column string, pk []byte) ([]byte, bool, error) {
	if a := cl.auditor(); a != nil {
		return cl.link().getOptimistic(a, 0, table, column, pk)
	}
	return cl.link().getVerified(table, column, pk)
}

// RangePKVerified performs a verified range scan, returning the proven
// cells (optimistically under AuditMode, see GetVerified).
func (cl *Client) RangePKVerified(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	if a := cl.auditor(); a != nil {
		return cl.link().rangeOptimistic(a, 0, table, column, pkLo, pkHi)
	}
	return cl.link().rangeVerified(table, column, pkLo, pkHi)
}

// History returns all versions of a cell, newest first.
func (cl *Client) History(table, column string, pk []byte) ([]Cell, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpHistory, Table: table, Column: column, PK: pk})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// LookupEqual returns cells of one column whose latest value equals
// value (the server must maintain the inverted index).
func (cl *Client) LookupEqual(table, column string, value []byte) ([]Cell, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpLookupEq, Table: table, Column: column, Value: value})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Snapshot streams a full snapshot of the server's database to w — the
// operator-facing way to take a checkpoint by hand (spitz-cli snapshot).
// The stream is WriteSnapshot's format and can be loaded with Restore,
// ResetFromSnapshot, or Client.Restore.
func (cl *Client) Snapshot(w io.Writer) error {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpSnapshot})
	if err != nil {
		return err
	}
	_, err = w.Write(resp.Value)
	return err
}

// Restore replaces the server's entire state with the given snapshot
// stream (a file written by Snapshot or WriteSnapshot). The server
// validates the snapshot exactly like a local Restore — a tampered file
// is rejected. Only in-memory servers accept restores; durable servers
// own their state. The returned digest is the restored ledger's; any
// previously saved digests refer to the replaced history and must be
// discarded, so this client's verifier is reset to trust-on-first-use.
func (cl *Client) Restore(snapshot []byte) (Digest, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpRestore, Snapshot: snapshot})
	if err != nil {
		return Digest{}, err
	}
	cl.verifier = NewVerifier()
	return resp.Digest, nil
}

// Stats fetches the server's observability counters: per-shard heights,
// group-commit totals, WAL durable height and retained span, attached
// replication followers with their lag, and — on a replica — its
// replication status.
func (cl *Client) Stats() (ServerStats, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		return ServerStats{}, err
	}
	if resp.Stats == nil {
		return ServerStats{}, errors.New("spitz: server omitted stats")
	}
	return *resp.Stats, nil
}

// Proto reports the wire framing this client negotiated with the
// server (wire.ProtoBinary or wire.ProtoGob) — empty if the connection
// failed before negotiation finished.
func (cl *Client) Proto() string { return cl.c.Proto() }

// Digest fetches the server's current ledger digest (unverified; use
// SyncDigest to advance trust safely).
func (cl *Client) Digest() (Digest, error) {
	resp, err := cl.c.Do(wire.Request{Op: wire.OpDigest})
	if err != nil {
		return Digest{}, err
	}
	return resp.Digest, nil
}

// SyncDigest advances the client's trusted digest to the server's current
// one, verifying a consistency proof so a rewritten history is rejected.
func (cl *Client) SyncDigest() error {
	d, err := cl.Digest()
	if err != nil {
		return err
	}
	return cl.link().syncDigest(d)
}

func encodePuts(puts []Put) []wire.Put {
	wp := make([]wire.Put, len(puts))
	for i, p := range puts {
		wp[i] = wire.Put{Table: p.Table, Column: p.Column, PK: p.PK,
			Value: p.Value, Tombstone: p.Tombstone}
	}
	return wp
}

// ---------------------------------------------------------------------------
// Shared verified-read flows

// shardLink is one (connection, verifier, shard) triple. A plain Client
// holds one with shard 0 (unsharded); a ShardedClient holds one per
// shard, so each shard's proofs verify against that shard's own trusted
// digest; a ReplicatedClient points c at a replica and syncC at the
// primary, so data comes from the replica but trust only ever advances
// against the primary's digest.
type shardLink struct {
	c     *wire.Client
	v     *Verifier
	mu    *sync.Mutex // serializes syncDigest's check-fetch-advance
	shard int         // wire shard id: 0 unsharded, i+1 for shard i

	// syncC, when non-nil, serves the consistency-proof traffic instead
	// of c: the digest authority the verifier trusts (the primary of a
	// replicated deployment).
	syncC *wire.Client
	// maxLag, when non-zero, bounds how many blocks behind the trusted
	// digest a served result may be before ErrStale is returned.
	maxLag uint64

	// tr, when non-nil, is the parent span this link's requests record
	// under (a sharded fan-out or an audit flush owns the root span);
	// when nil, verified-read flows mint their own client root.
	tr *obs.Trace
}

// span opens the span one verified-read flow records under: a child of
// the link's parent when one is set, a sampled client root otherwise.
// The caller finishes it; nil (unsampled) is safe everywhere.
func (l shardLink) span(op string) *obs.Trace {
	if l.tr != nil {
		return l.tr.Child(op)
	}
	return obs.DefaultTracer.Root(op, "client")
}

// errPrimarySync marks a failure of the digest-authority round trip
// (the primary of a replicated deployment): the replica that served the
// data is not at fault, so failover logic must not blame it.
var errPrimarySync = errors.New("spitz: digest authority unreachable")

// syncConn returns the connection trust advances against.
func (l shardLink) syncConn() *wire.Client {
	if l.syncC != nil {
		return l.syncC
	}
	return l.c
}

// checkLag enforces the link's staleness bound: d is the digest the
// result was served at, cur the trusted digest it was proven a prefix
// of.
func (l shardLink) checkLag(d, cur Digest) error {
	if l.maxLag > 0 && cur.Height > d.Height && cur.Height-d.Height > l.maxLag {
		return fmt.Errorf("%w: result is %d blocks behind the trusted digest (max %d)",
			ErrStale, cur.Height-d.Height, l.maxLag)
	}
	return nil
}

// syncAndVerify advances the link's trusted digest as needed and checks
// p, which the server produced against digest d.
func (l shardLink) syncAndVerify(tr *obs.Trace, d Digest, p *Proof) error {
	return l.syncAndVerifyWith(tr, d,
		func() error { return l.v.VerifyNow(*p) },
		func() error { return l.v.VerifyAsOf(*p, d) })
}

// syncAndVerifyWith is the digest-advance flow every proof-carrying read
// shares; the closures perform the final proof check against the current
// trusted digest (verifyNow) or against d once d is proven a prefix of
// it (verifyAsOf) — a point/range Proof and an aggregated BatchProof
// differ only there. The whole flow runs under the link's mutex so
// concurrent verified reads cannot interleave digest refreshes and
// report tampering the honest server never committed.
//
// When the trusted digest has already moved past d (a concurrent read
// synced a newer state), the proof cannot verify against the trusted
// digest — but it is still an honest statement about an older ledger
// state. One atomic server call returns two consistency proofs: trusted
// digest → current (advancing trust) and d → current (showing d is a
// genuine prefix of the same history); with both verified, the proof is
// checked against d itself. This converges in one round trip under any
// write churn, where refetch-until-current would livelock.
func (l shardLink) syncAndVerifyWith(tr *obs.Trace, d Digest, verifyNow, verifyAsOf func() error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.v.Digest()
	if cur == d {
		return verifyNow()
	}
	if cur.Height == 0 && cur.Root.IsZero() {
		if l.syncC == nil {
			if err := l.v.Advance(d, ConsistencyProof{}); err != nil {
				return err
			}
			return verifyNow()
		}
		// Trust bootstraps from the digest authority, never from the
		// replica being read: pin the primary's digest (trust on first
		// use, exactly as a direct client would) and fall through to
		// prove d is a prefix of it.
		dreq := wire.Request{Op: wire.OpDigest, Shard: l.shard}
		pin := tr.Child("client.trust-pin")
		dreq.SetTrace(pin)
		dresp, err := l.syncC.Do(dreq)
		pin.Finish()
		if err != nil {
			return fmt.Errorf("%w: %v", errPrimarySync, err)
		}
		if err := l.v.Advance(dresp.Digest, ConsistencyProof{}); err != nil {
			return err
		}
		cur = l.v.Digest()
		if cur == d {
			return verifyNow()
		}
	}
	// The prefix-proof leg: against the digest authority (the primary of
	// a replicated deployment) when the link carries one, the serving
	// connection otherwise. Its span is a child of the read's root, so a
	// replica-served read shows both legs under one trace ID.
	creq := wire.Request{Op: wire.OpConsistency, OldDigest: cur, OldDigest2: &d,
		Shard: l.shard}
	leg := tr.Child("client.prefix-proof")
	creq.SetTrace(leg)
	resp, err := l.syncConn().Do(creq)
	leg.Finish()
	if err != nil {
		if l.syncC != nil {
			if errors.Is(err, wire.ErrTransport) {
				return fmt.Errorf("%w: %v", errPrimarySync, err)
			}
			// The digest authority itself refused to produce a prefix
			// proof over the replica's digest (e.g. the replica claims a
			// taller ledger than the primary has): the replica's chain is
			// not part of the primary's history.
			return fmt.Errorf("%w: %v", ErrTampered, err)
		}
		return err
	}
	if resp.Consistency == nil || resp.Consistency2 == nil {
		return errors.New("spitz: server omitted consistency proof")
	}
	if err := l.v.Advance(resp.Digest, *resp.Consistency); err != nil {
		return err
	}
	if l.v.Digest() == d {
		return verifyNow()
	}
	// Trust is now ahead of d: require the second proof to show d is a
	// prefix of the same (now trusted) state, then verify against d.
	// For a replica-served result this is exactly the replication trust
	// argument: the proof came from the replica's digest d, and the
	// digest authority (syncConn — the primary) has just proven d to be
	// a prefix of the trusted history, so a tampering replica is caught
	// here and a lagging one is served as verifiably stale data.
	cons2 := *resp.Consistency2
	if cons2.OldSize != int(d.Height) || cons2.NewSize != int(resp.Digest.Height) {
		return fmt.Errorf("%w: prefix proof sizes %d/%d do not match digests %d/%d",
			ErrTampered, cons2.OldSize, cons2.NewSize, d.Height, resp.Digest.Height)
	}
	if err := cons2.Verify(d.Root, resp.Digest.Root); err != nil {
		return fmt.Errorf("%w: response digest is not a prefix of the ledger: %v", ErrTampered, err)
	}
	if err := l.checkLag(d, resp.Digest); err != nil {
		return err
	}
	return verifyAsOf()
}

func (l shardLink) getVerified(table, column string, pk []byte) ([]byte, bool, error) {
	tr := l.span("client.get-verified")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpGetVerified, Table: table, Column: column,
		PK: pk, Shard: l.shard}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return nil, false, err
	}
	if err := l.checkEmptyReplica(resp.Digest); err != nil {
		return nil, false, err
	}
	if resp.Proof == nil {
		if resp.Found {
			return nil, false, fmt.Errorf("%w: server omitted proof", ErrTampered)
		}
		return nil, false, nil // empty database
	}
	if err := l.syncAndVerify(tr, resp.Digest, resp.Proof); err != nil {
		return nil, false, err
	}
	// The proof must answer the question that was asked: a valid proof
	// for some other key would otherwise smuggle in that key's value.
	if resp.Proof.Point == nil ||
		!bytes.Equal(resp.Proof.Point.Key, cellstore.CellPrefix(table, column, pk)) {
		return nil, false, fmt.Errorf("%w: proof answers a different key", ErrTampered)
	}
	cells, err := resp.Proof.Cells()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if len(cells) == 0 || cells[0].Tombstone {
		if resp.Found {
			return nil, false, fmt.Errorf("%w: result contradicts proof", ErrTampered)
		}
		return nil, false, nil
	}
	return cells[0].Value, true, nil
}

// checkEmptyReplica flags a replica that has no history yet — a fresh
// follower mid-bootstrap. That is the extreme form of staleness, not
// tampering: callers fail over to the primary instead of alarming.
func (l shardLink) checkEmptyReplica(d Digest) error {
	if l.syncC != nil && d.Height == 0 {
		return fmt.Errorf("%w: replica has no history yet (still bootstrapping)", ErrStale)
	}
	return nil
}

func (l shardLink) rangeVerified(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	tr := l.span("client.range-verified")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpRangeVer, Table: table, Column: column,
		PK: pkLo, PKHi: pkHi, Shard: l.shard}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return nil, err
	}
	if err := l.checkEmptyReplica(resp.Digest); err != nil {
		return nil, err
	}
	if resp.Proof == nil {
		if len(resp.Cells) > 0 {
			return nil, fmt.Errorf("%w: server omitted proof", ErrTampered)
		}
		return nil, nil
	}
	if err := l.syncAndVerify(tr, resp.Digest, resp.Proof); err != nil {
		return nil, err
	}
	// The proof must cover exactly the requested range: a valid proof of
	// a narrower range would otherwise silently omit rows.
	wantStart, wantEnd := cellstore.RefRange(table, column, pkLo, pkHi)
	if resp.Proof.Range == nil ||
		!bytes.Equal(resp.Proof.Range.Start, wantStart) || !bytes.Equal(resp.Proof.Range.End, wantEnd) {
		return nil, fmt.Errorf("%w: proof covers a different range", ErrTampered)
	}
	cells, err := resp.Proof.Cells()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	live := cells[:0]
	for _, c := range cells {
		if !c.Tombstone {
			live = append(live, c)
		}
	}
	return live, nil
}

// syncDigest advances the link's trusted digest to d, fetching and
// verifying a consistency proof from the link's shard when trust was
// already pinned. The whole check-fetch-advance runs under the link's
// mutex: two concurrent verified reads would otherwise both fetch a
// proof for the same stale digest, and the loser's Advance would report
// tampering the honest server never committed.
func (l shardLink) syncDigest(d Digest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.v.Digest()
	if cur == d || d.Height < cur.Height {
		// Already there — or a response raced an even newer refresh; the
		// proof check against the newer trusted digest still stands.
		return nil
	}
	if cur.Height == 0 && cur.Root.IsZero() {
		return l.v.Advance(d, ConsistencyProof{})
	}
	resp, err := l.syncConn().Do(wire.Request{Op: wire.OpConsistency, OldDigest: cur, Shard: l.shard})
	if err != nil {
		return err
	}
	if resp.Consistency == nil {
		return errors.New("spitz: server omitted consistency proof")
	}
	return l.v.Advance(resp.Digest, *resp.Consistency)
}

// ---------------------------------------------------------------------------
// Sharded client

// ShardedClient is a network client for a sharded Spitz deployment
// served behind one listener (OpenCluster + ClusterDB.Serve, or
// spitz-server -shards N). At connect time it fetches the shard map;
// afterwards point operations route directly to the owning shard and
// range, lookup and digest operations fan out across every shard
// concurrently. Verification stays client-side and per shard: the client
// keeps one Verifier per shard, so a proof produced by shard i is only
// ever checked against shard i's trusted digest.
//
// A ShardedClient also works against an unsharded server, which reports
// a one-shard map. Safe for concurrent use.
type ShardedClient struct {
	conns     []*wire.Client // conns[i] carries shard i's traffic; conns[0] also cluster-level ops
	verifiers []*Verifier
	syncMus   []sync.Mutex // one per shard, serializing digest refreshes
	auditHolder

	// anchor, when non-nil, is the digest authority every shard's trust
	// advances against (see AnchorTrust); anchorLag bounds replica
	// staleness exactly like ReplicatedOptions.MaxLag.
	anchor    *wire.Client
	anchorLag uint64
}

// DialSharded connects to a sharded Spitz server, fetching the shard map
// and opening one connection per shard so fan-out requests proceed in
// parallel.
func DialSharded(network, addr string) (*ShardedClient, error) {
	return NewShardedClient(func() (*wire.Client, error) { return wire.Dial(network, addr) })
}

// NewShardedClient builds a sharded client from a dialling function —
// the transport-agnostic form DialSharded wraps (tests use it with
// in-process pipe listeners).
func NewShardedClient(dial func() (*wire.Client, error)) (*ShardedClient, error) {
	first, err := dial()
	if err != nil {
		return nil, err
	}
	resp, err := first.Do(wire.Request{Op: wire.OpShardMap})
	if err != nil {
		first.Close()
		return nil, fmt.Errorf("spitz: shard map: %w", err)
	}
	n := resp.ShardCount
	if n < 1 {
		first.Close()
		return nil, fmt.Errorf("spitz: server reported %d shards", n)
	}
	sc := &ShardedClient{conns: make([]*wire.Client, n), verifiers: make([]*Verifier, n),
		syncMus: make([]sync.Mutex, n)}
	sc.conns[0] = first
	sc.verifiers[0] = NewVerifier()
	for i := 1; i < n; i++ {
		c, err := dial()
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.conns[i] = c
		sc.verifiers[i] = NewVerifier()
	}
	return sc, nil
}

// Close releases every connection (closing the auditor first when
// AuditMode is active; its final flush error is returned if nothing else
// fails).
func (sc *ShardedClient) Close() error {
	auditErr := sc.closeAudit()
	var first error
	for _, c := range sc.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if sc.anchor != nil {
		if err := sc.anchor.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return auditErr
}

// AnchorTrust points every shard's trust decisions at a separate digest
// authority — the primary of a replicated deployment — so this client
// can read from a replica (DialSharded against Replica.Serve) while
// trust only ever advances against the primary: a proof served by the
// replica at digest d is accepted only after the authority proves d a
// prefix of the trusted history, per shard. This is the sharded form of
// DialReplicated's anchoring. maxLag, when non-zero, bounds how many
// blocks behind the trusted digest a replica-served result may be
// before ErrStale is returned.
//
// Call it once, right after connecting and before issuing reads. The
// anchor connection is owned by the client and released by Close.
func (sc *ShardedClient) AnchorTrust(dial func() (*wire.Client, error), maxLag uint64) error {
	if sc.anchor != nil {
		return errors.New("spitz: trust anchor already set")
	}
	c, err := dial()
	if err != nil {
		return err
	}
	sc.anchor = c
	sc.anchorLag = maxLag
	return nil
}

// StartAudit switches the sharded client into deferred verification (see
// AuditMode): receipts carry their owning shard and are audited against
// that shard's own trusted digest, one batch round trip per (shard,
// digest) group.
func (sc *ShardedClient) StartAudit(mode AuditMode) (*Auditor, error) {
	return sc.startAudit(mode, sc.link)
}

// Shards returns the cluster's shard count.
func (sc *ShardedClient) Shards() int { return len(sc.conns) }

// ShardFor reports which shard owns a primary key (the client-side shard
// map).
func (sc *ShardedClient) ShardFor(pk []byte) int {
	return server.ShardIndex(pk, len(sc.conns))
}

// ShardVerifier exposes shard i's proof verifier.
func (sc *ShardedClient) ShardVerifier(i int) *Verifier { return sc.verifiers[i] }

func (sc *ShardedClient) linkFor(pk []byte) shardLink { return sc.link(sc.ShardFor(pk)) }

// link builds shard i's (connection, verifier, mutex) triple, routing
// consistency traffic to the trust anchor when one is set.
func (sc *ShardedClient) link(i int) shardLink {
	return shardLink{c: sc.conns[i], v: sc.verifiers[i], mu: &sc.syncMus[i], shard: i + 1,
		syncC: sc.anchor, maxLag: sc.anchorLag}
}

// Apply commits a batch of writes atomically: the server groups them by
// owning shard and commits cross-shard batches with two-phase commit. It
// returns the cluster commit timestamp.
func (sc *ShardedClient) Apply(statement string, puts []Put) (uint64, error) {
	// A sampled root here stitches the coordinator's per-shard 2PC
	// prepare/commit legs under the client's trace ID.
	tr := obs.DefaultTracer.Root("client.apply", "client")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpPut, Statement: statement, Puts: encodePuts(puts)}
	req.SetTrace(tr)
	resp, err := sc.conns[0].Do(req)
	if err != nil {
		return 0, err
	}
	return resp.Header.Version, nil
}

// Get performs an unverified point read against the owning shard.
func (sc *ShardedClient) Get(table, column string, pk []byte) ([]byte, error) {
	l := sc.linkFor(pk)
	resp, err := l.c.Do(wire.Request{Op: wire.OpGet, Table: table, Column: column, PK: pk, Shard: l.shard})
	if err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// GetVerified performs a verified point read: the request routes to the
// owning shard and the proof is checked against that shard's trusted
// digest (optimistically under AuditMode, see Client.GetVerified).
func (sc *ShardedClient) GetVerified(table, column string, pk []byte) ([]byte, bool, error) {
	si := sc.ShardFor(pk)
	if a := sc.auditor(); a != nil {
		return sc.link(si).getOptimistic(a, si, table, column, pk)
	}
	return sc.link(si).getVerified(table, column, pk)
}

// History returns all versions of a cell from its owning shard, newest
// first.
func (sc *ShardedClient) History(table, column string, pk []byte) ([]Cell, error) {
	l := sc.linkFor(pk)
	resp, err := l.c.Do(wire.Request{Op: wire.OpHistory, Table: table, Column: column, PK: pk, Shard: l.shard})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// fanOut runs fn for every shard concurrently and merges the per-shard
// cell lists into pk order (the same merge the server uses, so
// client-side and server-side scans agree on result order).
func (sc *ShardedClient) fanOut(fn func(i int) ([]Cell, error)) ([]Cell, error) {
	parts := make([][]Cell, len(sc.conns))
	errs := make([]error, len(sc.conns))
	var wg sync.WaitGroup
	for i := range sc.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return server.MergeCellsByPK(parts), nil
}

// RangePK scans a primary-key range across every shard concurrently
// (unverified), merging the results into one pk-ordered scan.
func (sc *ShardedClient) RangePK(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	return sc.fanOut(func(i int) ([]Cell, error) {
		resp, err := sc.conns[i].Do(wire.Request{Op: wire.OpRange, Table: table, Column: column,
			PK: pkLo, PKHi: pkHi, Shard: i + 1})
		if err != nil {
			return nil, err
		}
		return resp.Cells, nil
	})
}

// RangePKVerified scans a primary-key range across every shard
// concurrently, verifying each shard's proof against that shard's
// trusted digest before merging (optimistically under AuditMode, with
// one receipt per shard).
func (sc *ShardedClient) RangePKVerified(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	if a := sc.auditor(); a != nil {
		return sc.fanOut(func(i int) ([]Cell, error) {
			return sc.link(i).rangeOptimistic(a, i, table, column, pkLo, pkHi)
		})
	}
	// One root span owns the scatter; each shard's read becomes a child
	// leg, so the whole fan-out stitches under a single trace ID.
	tr := obs.DefaultTracer.Root("client.range-verified", "client")
	defer tr.Finish()
	return sc.fanOut(func(i int) ([]Cell, error) {
		l := sc.link(i)
		l.tr = tr
		return l.rangeVerified(table, column, pkLo, pkHi)
	})
}

// LookupEqual fans an inverted-index equality lookup out across every
// shard concurrently (the cluster must maintain the inverted index).
func (sc *ShardedClient) LookupEqual(table, column string, value []byte) ([]Cell, error) {
	return sc.fanOut(func(i int) ([]Cell, error) {
		resp, err := sc.conns[i].Do(wire.Request{Op: wire.OpLookupEq, Table: table, Column: column,
			Value: value, Shard: i + 1})
		if err != nil {
			return nil, err
		}
		return resp.Cells, nil
	})
}

// ShardDigest fetches shard i's current ledger digest (unverified).
func (sc *ShardedClient) ShardDigest(i int) (Digest, error) {
	resp, err := sc.conns[i].Do(wire.Request{Op: wire.OpDigest, Shard: i + 1})
	if err != nil {
		return Digest{}, err
	}
	return resp.Digest, nil
}

// VerifyShardPrefix proves that old is a prefix of shard i's current
// ledger: it fetches the current digest together with a consistency
// proof over old (captured atomically) and checks the proof. It returns
// the current digest without touching the client's trusted digests —
// the operator-facing form of the replication trust check (spitz-cli
// digest check).
func (sc *ShardedClient) VerifyShardPrefix(i int, old Digest) (Digest, error) {
	if old.Height == 0 && old.Root.IsZero() {
		return sc.ShardDigest(i) // the empty ledger is a prefix of everything
	}
	resp, err := sc.conns[i].Do(wire.Request{Op: wire.OpConsistency, OldDigest: old, Shard: i + 1})
	if err != nil {
		return Digest{}, err
	}
	if resp.Consistency == nil {
		return Digest{}, errors.New("spitz: server omitted consistency proof")
	}
	cons := *resp.Consistency
	if cons.OldSize != int(old.Height) || cons.NewSize != int(resp.Digest.Height) {
		return Digest{}, fmt.Errorf("%w: consistency proof sizes %d/%d do not match digests %d/%d",
			ErrTampered, cons.OldSize, cons.NewSize, old.Height, resp.Digest.Height)
	}
	if err := cons.Verify(old.Root, resp.Digest.Root); err != nil {
		return Digest{}, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return resp.Digest, nil
}

// ClusterDigest fetches the cluster digest — every shard's ledger digest
// bound under one combined root — and checks the binding.
func (sc *ShardedClient) ClusterDigest() (ClusterDigest, error) {
	resp, err := sc.conns[0].Do(wire.Request{Op: wire.OpClusterDigest})
	if err != nil {
		return ClusterDigest{}, err
	}
	if resp.Cluster == nil {
		return ClusterDigest{}, errors.New("spitz: server omitted cluster digest")
	}
	if err := resp.Cluster.Check(); err != nil {
		return ClusterDigest{}, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if len(resp.Cluster.Shards) != len(sc.conns) {
		return ClusterDigest{}, fmt.Errorf("%w: cluster digest names %d shards, client connected to %d",
			ErrTampered, len(resp.Cluster.Shards), len(sc.conns))
	}
	return *resp.Cluster, nil
}

// SyncDigests advances every shard's trusted digest to the cluster's
// current state, verifying a per-shard consistency proof so a rewritten
// history on any shard is rejected.
func (sc *ShardedClient) SyncDigests() error {
	d, err := sc.ClusterDigest()
	if err != nil {
		return err
	}
	errs := make([]error, len(sc.conns))
	var wg sync.WaitGroup
	for i := range sc.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sc.link(i).syncDigest(d.Shards[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("spitz: shard %d digest sync: %w", i, err)
		}
	}
	return nil
}
