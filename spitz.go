// Package spitz is a verifiable database: an immutable, tamper-evident,
// multi-version transactional store in which every query result can carry
// an integrity proof verifiable against a compact ledger digest.
//
// It is a from-scratch Go implementation of the system described in
// "Spitz: A Verifiable Database System" (Zhang, Xie, Yue, Zhong;
// PVLDB 13(12), 2020). The engine unifies the query index and the ledger:
// the same authenticated index traversal that answers a query produces its
// proof, which is what makes verified reads, writes and range scans cheap
// compared with bolting a separate ledger onto an existing database.
//
// # Quick start
//
//	db := spitz.Open(spitz.Options{})
//	db.Apply("credit alice", []spitz.Put{
//		{Table: "accounts", Column: "balance", PK: []byte("alice"), Value: []byte("100")},
//	})
//	v, _ := db.Get("accounts", "balance", []byte("alice"))
//
//	verifier := spitz.NewVerifier()
//	res, _ := db.GetVerified("accounts", "balance", []byte("alice"))
//	_ = verifier.Advance(res.Digest, spitz.ConsistencyProof{}) // pin trust
//	if err := verifier.VerifyNow(res.Proof); err != nil {
//		// tampering detected
//	}
//
// See the examples directory for transactional, analytical, and networked
// usage, and DESIGN.md for the architecture.
package spitz

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/durable"
	"spitz/internal/ledger"
	"spitz/internal/mtree"
	"spitz/internal/proof"
	"spitz/internal/query"
	"spitz/internal/repl"
	"spitz/internal/txn"
	"spitz/internal/wal"
	"spitz/internal/wire"
)

// Re-exported core types. The aliases keep one canonical definition while
// letting applications depend only on this package.
type (
	// Cell is one value of one column of one row at one version.
	Cell = cellstore.Cell
	// Put is one cell write in a batch.
	Put = core.Put
	// Digest is the compact ledger commitment a client saves locally.
	Digest = ledger.Digest
	// Proof is the integrity proof attached to a verified query result.
	Proof = ledger.Proof
	// ConsistencyProof shows one digest's ledger is a prefix of another's.
	ConsistencyProof = mtree.ConsistencyProof
	// BatchProof is the aggregated multi-read proof a deferred-audit
	// flush verifies (AuditMode): one block binding plus shared sibling
	// nodes for every covered receipt.
	BatchProof = ledger.BatchProof
	// BlockHeader describes one committed ledger block.
	BlockHeader = ledger.BlockHeader
	// VerifiedResult carries a result with its proof and digest.
	VerifiedResult = core.VerifiedResult
	// Verifier tracks a client's trusted digest and checks proofs.
	Verifier = proof.Verifier
	// Txn is an interactive serializable transaction.
	Txn = core.Txn
	// BatchStats describes the group-commit pipeline's behaviour.
	BatchStats = core.BatchStats
	// TxnStats counts transaction commit and abort outcomes.
	TxnStats = txn.Stats
	// WALStats summarizes the write-ahead log: durable height and the
	// retained segment span (what a late replication follower can still
	// resume from).
	WALStats = durable.WALStats
	// FollowerStats describes one attached replication follower: acked
	// height and lag in blocks and bytes.
	FollowerStats = wire.FollowerStats
	// ServerStats is the wire-level observability payload a running
	// server reports (Client.Stats, spitz-cli stats).
	ServerStats = wire.Stats
	// Metric is one named counter or gauge sample in ServerStats.
	Metric = wire.Metric
	// ReplicaStatus is a read replica's replication state.
	ReplicaStatus = repl.Status
)

// Stats is a point-in-time snapshot of database counters.
type Stats struct {
	// Height is the number of committed ledger blocks.
	Height uint64
	// Batch reports the group-commit pipeline: blocks cut, transactions
	// per block, and the batch-size distribution.
	Batch BatchStats
	// Txns reports interactive transaction outcomes.
	Txns TxnStats
	// WAL reports the write-ahead log's durable height and retained
	// segment span; nil for in-memory databases.
	WAL *WALStats
	// Followers lists the replication followers currently streaming this
	// database's log (populated while the database is served).
	Followers []FollowerStats
}

// Concurrency control modes for Options.Mode.
const (
	// ModeOCC validates read sets at commit (optimistic; the default).
	ModeOCC = txn.ModeOCC
	// ModeTO orders transactions by start timestamp.
	ModeTO = txn.ModeTO
)

// SyncPolicy controls when durable commits reach the disk (OpenDir).
type SyncPolicy = wal.SyncPolicy

// Sync policies for Options.Sync.
const (
	// SyncAlways fsyncs the write-ahead log before acknowledging every
	// commit; concurrent commits share one fsync (group commit).
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a background timer; a crash loses at most
	// the last interval of commits.
	SyncInterval = wal.SyncInterval
	// SyncNever hands commits to the OS immediately but never fsyncs.
	SyncNever = wal.SyncNever
)

// Sentinel errors.
var (
	// ErrNotFound is returned by Get for absent or deleted cells.
	ErrNotFound = core.ErrNotFound
	// ErrConflict is returned by Txn.Commit on serialization conflicts.
	ErrConflict = txn.ErrConflict
	// ErrTampered is returned by Verifier methods when verification fails.
	ErrTampered = proof.ErrTampered
	// ErrStale is returned by a ReplicatedClient when a replica-served
	// result is verifiably honest but further behind the trusted digest
	// than ReplicatedOptions.MaxLag allows.
	ErrStale = errors.New("spitz: result verifiably stale beyond the configured bound")
)

// Options configures Open and OpenDir.
type Options struct {
	// Mode selects the concurrency control scheme (default ModeOCC).
	Mode txn.Mode
	// MaintainInverted enables the inverted index for value lookups
	// (LookupEqual, LookupNumericRange) at some write cost.
	MaintainInverted bool

	// MaxBatchTxns caps how many concurrent transactions the group-commit
	// pipeline folds into one ledger block (default 128).
	MaxBatchTxns int
	// MaxBatchDelay makes the commit leader wait this long for more
	// transactions before cutting a block. The zero default adds no
	// latency: batching then comes only from commits arriving while the
	// previous block is being built, which self-tunes with load.
	MaxBatchDelay time.Duration

	// The fields below configure durability and apply to OpenDir only;
	// Open ignores them.

	// Sync selects when commits become durable (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 50ms).
	SyncEvery time.Duration
	// CheckpointInterval and CheckpointEveryBlocks control background
	// checkpoints; both zero means 1 minute / 4096 blocks, and a
	// negative interval disables automatic checkpoints.
	CheckpointInterval    time.Duration
	CheckpointEveryBlocks uint64
	// WALSegmentSize caps write-ahead log segment files (default 64 MiB).
	WALSegmentSize int64

	// Store selects the node-store backend: StoreMemory (the default)
	// keeps the CAS in RAM and checkpoints stream full snapshots;
	// StoreDisk backs it with segment files behind a bounded write-back
	// cache, checkpoints incrementally, and reopens by root hash — a
	// restart pays O(height) header reads instead of loading all state.
	// The choice is recorded in the data directory on creation and is
	// authoritative on later opens.
	Store StoreKind
	// NodeCacheMB bounds the disk store's node cache in MiB (default 64,
	// minimum 1). Ignored for StoreMemory.
	NodeCacheMB int
}

// StoreKind selects the node-store backend for Options.Store.
type StoreKind = durable.StoreKind

// Node-store backends.
const (
	// StoreMemory keeps all nodes in RAM (the default).
	StoreMemory = durable.StoreMemory
	// StoreDisk keeps nodes in append-only segment files behind a
	// bounded write-back cache.
	StoreDisk = durable.StoreDisk
)

// ParseStoreKind parses the command-line spellings "mem" and "disk".
func ParseStoreKind(s string) (StoreKind, error) { return durable.ParseStoreKind(s) }

// StoreKind reports the node-store backend this database resolved to.
// It can differ from Options.Store: a directory's STORE marker is
// authoritative, so a disk-store database reopens as disk no matter
// what the caller asked for.
func (db *DB) StoreKind() StoreKind {
	if db.dur == nil {
		return StoreMemory
	}
	return db.dur.StoreKind()
}

// DB is an embedded Spitz database. Safe for concurrent use.
type DB struct {
	mu   sync.RWMutex
	eng  *core.Engine
	dur  *durable.Manager
	src  *repl.Source // replication source over dur's WAL; nil in memory
	opts Options
	srvs []*wire.Server // live Serve instances, kept in step on engine swaps

	// LegacyGobWire, when set before Serve, disables the binary/v2 wire
	// negotiation so this server speaks only the legacy gob framing —
	// an operator escape hatch (spitz-server -legacy-gob) for rolling
	// back a fleet mid-upgrade.
	LegacyGobWire bool
}

// engine returns the current engine (swappable via ResetFromSnapshot).
func (db *DB) engine() *core.Engine {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.eng
}

// Open creates an in-memory verifiable database. State is lost when the
// process exits; use OpenDir for a durable database.
func Open(opts Options) *DB {
	return &DB{eng: core.New(core.Options{
		Store:            cas.NewMemory(),
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
		MaxBatchTxns:     opts.MaxBatchTxns,
		MaxBatchDelay:    opts.MaxBatchDelay,
	}), opts: opts}
}

// OpenDir opens (creating if needed) a durable verifiable database in
// dir. Every commit is written ahead to a log before it is acknowledged,
// checkpoints stream snapshots in the background, and a crash recovers on
// the next OpenDir: the newest checkpoint is restored and the log tail
// replayed with per-block hash verification, so clients' saved digests
// keep verifying across the restart. Call Close when done.
func OpenDir(dir string, opts Options) (*DB, error) {
	m, err := durable.Open(dir, durable.Options{
		Mode:                  opts.Mode,
		MaintainInverted:      opts.MaintainInverted,
		MaxBatchTxns:          opts.MaxBatchTxns,
		MaxBatchDelay:         opts.MaxBatchDelay,
		Sync:                  opts.Sync,
		SyncInterval:          opts.SyncEvery,
		SegmentSize:           opts.WALSegmentSize,
		CheckpointInterval:    opts.CheckpointInterval,
		CheckpointEveryBlocks: opts.CheckpointEveryBlocks,
		Store:                 opts.Store,
		NodeCacheMB:           opts.NodeCacheMB,
	})
	if err != nil {
		return nil, err
	}
	return &DB{eng: m.Engine(), dur: m, src: repl.NewSource(m), opts: opts}, nil
}

// Close makes all acknowledged commits durable and releases the data
// directory. It is a no-op for in-memory databases. Commits issued after
// Close fail.
func (db *DB) Close() error {
	if db.dur != nil {
		return db.dur.Close()
	}
	return nil
}

// Checkpoint forces a durable snapshot now instead of waiting for the
// background cadence, shrinking both recovery time and the write-ahead
// log. It is a no-op for in-memory databases.
func (db *DB) Checkpoint() error {
	if db.dur != nil {
		return db.dur.Checkpoint()
	}
	return nil
}

// NewVerifier returns a client-side proof verifier with no pinned digest;
// the first Advance pins trust-on-first-use.
func NewVerifier() *Verifier { return proof.NewVerifier() }

// Apply commits a batch of writes as one ledger block (group commit) and
// returns its header. statement is recorded in the block for auditing.
func (db *DB) Apply(statement string, puts []Put) (BlockHeader, error) {
	return db.engine().Apply(statement, puts)
}

// PutRow writes all columns of one row in a single block.
func (db *DB) PutRow(table string, pk []byte, columns map[string][]byte) (BlockHeader, error) {
	puts := make([]Put, 0, len(columns))
	for col, val := range columns {
		puts = append(puts, Put{Table: table, Column: col, PK: pk, Value: val})
	}
	return db.Apply("PUT ROW "+table, puts)
}

// Get returns the latest live value of a cell, or ErrNotFound.
func (db *DB) Get(table, column string, pk []byte) ([]byte, error) {
	return db.engine().Get(table, column, pk)
}

// GetRow reads the given columns of one row; absent columns are omitted.
// All columns are read from one ledger snapshot, so a concurrent commit
// never interleaves old and new column values in the result.
func (db *DB) GetRow(table string, pk []byte, columns []string) (map[string][]byte, error) {
	return db.engine().GetRow(table, pk, columns)
}

// GetVerified returns the latest version of a cell together with its
// integrity proof and the digest it verifies against.
func (db *DB) GetVerified(table, column string, pk []byte) (VerifiedResult, error) {
	return db.engine().GetVerified(table, column, pk)
}

// RangePK scans the latest live cells of one column with primary keys in
// [pkLo, pkHi); nil bounds are open.
func (db *DB) RangePK(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	return db.engine().RangePK(table, column, pkLo, pkHi)
}

// RangePKVerified scans a primary-key range with one proof covering the
// complete result set.
func (db *DB) RangePKVerified(table, column string, pkLo, pkHi []byte) (VerifiedResult, error) {
	return db.engine().RangePKVerified(table, column, pkLo, pkHi)
}

// History returns every version of a cell, newest first, including
// tombstones.
func (db *DB) History(table, column string, pk []byte) ([]Cell, error) {
	return db.engine().History(table, column, pk)
}

// GetAt reads a cell as of a historical ledger block (time travel).
func (db *DB) GetAt(height uint64, table, column string, pk []byte) (Cell, bool, error) {
	return db.engine().GetAt(height, table, column, pk)
}

// LookupEqual returns cells of one column whose latest value equals value
// (requires Options.MaintainInverted).
func (db *DB) LookupEqual(table, column string, value []byte) ([]Cell, error) {
	return db.engine().LookupEqual(table, column, value)
}

// LookupNumericRange returns cells whose 8-byte big-endian numeric value
// lies in [lo, hi) (requires Options.MaintainInverted).
func (db *DB) LookupNumericRange(table, column string, lo, hi uint64) ([]Cell, error) {
	return db.engine().LookupNumericRange(table, column, lo, hi)
}

// Begin starts an interactive serializable transaction.
func (db *DB) Begin() *Txn { return db.engine().Begin() }

// Digest returns the current ledger digest; clients save it and verify
// later proofs (and history consistency) against it.
func (db *DB) Digest() Digest { return db.engine().Digest() }

// ConsistencyProof proves that the current ledger extends the one
// committed by old — history was appended to, never rewritten.
func (db *DB) ConsistencyProof(old Digest) (ConsistencyProof, error) {
	return db.engine().ConsistencyProof(old)
}

// ConsistencyUpdate returns the current digest together with the proof
// that it extends old, captured atomically. Clients refreshing a pinned
// digest while commits are in flight should use this instead of calling
// Digest and ConsistencyProof separately, which can straddle a new block
// and fail to match.
func (db *DB) ConsistencyUpdate(old Digest) (Digest, ConsistencyProof, error) {
	return db.engine().ConsistencyUpdate(old)
}

// Height returns the number of committed ledger blocks.
func (db *DB) Height() uint64 { return db.engine().Ledger().Height() }

// Stats returns a snapshot of the database's runtime counters: ledger
// height, group-commit batching behaviour, transaction outcomes, and —
// for durable databases — the write-ahead log's durable height and
// retained span plus every attached replication follower's progress.
func (db *DB) Stats() Stats {
	eng := db.engine()
	s := Stats{
		Height: eng.Ledger().Height(),
		Batch:  eng.BatchStats(),
		Txns:   eng.TxnStats(),
	}
	if db.dur != nil {
		ws := db.dur.WALStats()
		s.WAL = &ws
		s.Followers = db.src.Followers()
	}
	return s
}

// Block returns the header of the block at the given height.
func (db *DB) Block(height uint64) (BlockHeader, error) {
	return db.engine().Ledger().Header(height)
}

// Serve exposes the database over a listener using the Spitz wire
// protocol; it blocks until the listener closes. Use Client to connect.
// In-memory databases additionally accept the wire protocol's restore
// operation (Client.Restore / spitz-cli restore), which replaces the
// served state from an operator-supplied snapshot; durable databases
// reject it, because their state must come from their own data directory.
func (db *DB) Serve(ln net.Listener) error {
	// Engine read and server registration share one critical section, so
	// a concurrent ResetFromSnapshot can never slip between them and
	// leave this listener serving the discarded engine.
	db.mu.Lock()
	srv := wire.NewServer(db.eng)
	srv.Node = "primary"
	srv.LegacyGobOnly = db.LegacyGobWire
	if db.dur == nil {
		srv.Restore = func(snapshot []byte) (*core.Engine, error) {
			return db.resetFromSnapshot(bytes.NewReader(snapshot))
		}
	}
	srv.Stats = db.wireStats
	srv.Repl = func(shard int) (wire.ReplStreamer, error) {
		if shard > 1 {
			return nil, fmt.Errorf("spitz: shard %d beyond single-engine server", shard-1)
		}
		if db.src == nil {
			return nil, errors.New("spitz: an in-memory server has no write-ahead log to replicate; open it with OpenDir")
		}
		return db.src, nil
	}
	db.srvs = append(db.srvs, srv)
	db.mu.Unlock()
	defer func() {
		db.mu.Lock()
		for i, s := range db.srvs {
			if s == srv {
				db.srvs = append(db.srvs[:i], db.srvs[i+1:]...)
				break
			}
		}
		db.mu.Unlock()
	}()
	return srv.Serve(ln)
}

// wireStats converts Stats into the wire observability payload.
func (db *DB) wireStats() wire.Stats {
	st := db.Stats()
	sh := wire.ShardStats{
		Height:    st.Height,
		Blocks:    st.Batch.Blocks,
		Txns:      st.Batch.Txns,
		Followers: st.Followers,
	}
	if db.src != nil {
		w := db.src.WALStats()
		sh.WAL = &w
	}
	return wire.Stats{Shards: []wire.ShardStats{sh}}
}

// ServerStats returns the observability payload this database serves to
// OpStats clients: shard heights, WAL span, attached followers. Use it
// to publish instance gauges on an admin endpoint (wire.PublishStats).
func (db *DB) ServerStats() ServerStats { return db.wireStats() }

// ResetFromSnapshot replaces this in-memory database's entire state with
// the contents of a snapshot stream (WriteSnapshot's output), validating
// it like Restore does. In-flight operations complete against the old
// state. Durable databases refuse: their state is owned by the data
// directory.
func (db *DB) ResetFromSnapshot(r io.Reader) error {
	_, err := db.resetFromSnapshot(r)
	return err
}

func (db *DB) resetFromSnapshot(r io.Reader) (*core.Engine, error) {
	if db.dur != nil {
		return nil, errors.New("spitz: cannot restore a snapshot into a durable database; recover from its data directory instead")
	}
	eng, err := core.Restore(core.Options{
		Store:            cas.NewMemory(),
		Mode:             db.opts.Mode,
		MaintainInverted: db.opts.MaintainInverted,
	}, r)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.eng = eng
	srvs := append([]*wire.Server(nil), db.srvs...)
	db.mu.Unlock()
	// Running servers must follow the swap, or network clients would keep
	// reading and committing into the discarded engine.
	for _, s := range srvs {
		s.SetEngine(eng)
	}
	return eng, nil
}

// QueryResult is the outcome of Exec: rows for SELECT/HISTORY, an affected
// count and block height for mutations.
type QueryResult = query.Result

// QueryRow is one result row.
type QueryRow = query.Row

// Exec parses and executes one SQL statement (the paper's SQL interface):
//
//	INSERT INTO t (pk, col, ...) VALUES ('k', 'v', ...)
//	SELECT col, ... | * FROM t WHERE pk = 'k' | pk BETWEEN 'a' AND 'b'
//	UPDATE t SET col = 'v' WHERE pk = 'k'
//	DELETE FROM t WHERE pk = 'k'
//	HISTORY t.col WHERE pk = 'k'
//
// Mutating statements are recorded verbatim in their ledger block.
func (db *DB) Exec(statement string) (QueryResult, error) {
	return query.Exec(db.engine(), statement)
}

// PutDocument stores a JSON document (the paper's self-defined JSON
// schema): fields map to columns, nested objects to dotted paths, so each
// field gets cell-level history and verifiability. It returns the block
// height of the commit.
func (db *DB) PutDocument(table string, pk []byte, doc []byte) (uint64, error) {
	return query.PutDocument(db.engine(), table, pk, doc)
}

// GetDocument reassembles the latest version of a document.
func (db *DB) GetDocument(table string, pk []byte) ([]byte, bool, error) {
	return query.GetDocument(db.engine(), table, pk)
}

// Columns lists the columns ever written to a table.
func (db *DB) Columns(table string) []string { return db.engine().Columns(table) }

// WriteSnapshot serializes the database to w for restart durability:
// block headers, the version index, and every live object. Restore the
// stream with Restore.
func (db *DB) WriteSnapshot(w io.Writer) error { return db.engine().WriteSnapshot(w) }

// Restore reconstructs a database from a snapshot written by
// WriteSnapshot. Every object is re-inserted through content addressing
// and the block chain revalidated, so tampered snapshots are rejected;
// clients' saved digests keep verifying against the restored database.
func Restore(opts Options, r io.Reader) (*DB, error) {
	eng, err := core.Restore(core.Options{
		Store:            cas.NewMemory(),
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
	}, r)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}
