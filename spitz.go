// Package spitz is a verifiable database: an immutable, tamper-evident,
// multi-version transactional store in which every query result can carry
// an integrity proof verifiable against a compact ledger digest.
//
// It is a from-scratch Go implementation of the system described in
// "Spitz: A Verifiable Database System" (Zhang, Xie, Yue, Zhong;
// PVLDB 13(12), 2020). The engine unifies the query index and the ledger:
// the same authenticated index traversal that answers a query produces its
// proof, which is what makes verified reads, writes and range scans cheap
// compared with bolting a separate ledger onto an existing database.
//
// # Quick start
//
//	db := spitz.Open(spitz.Options{})
//	db.Apply("credit alice", []spitz.Put{
//		{Table: "accounts", Column: "balance", PK: []byte("alice"), Value: []byte("100")},
//	})
//	v, _ := db.Get("accounts", "balance", []byte("alice"))
//
//	verifier := spitz.NewVerifier()
//	res, _ := db.GetVerified("accounts", "balance", []byte("alice"))
//	_ = verifier.Advance(res.Digest, spitz.ConsistencyProof{}) // pin trust
//	if err := verifier.VerifyNow(res.Proof); err != nil {
//		// tampering detected
//	}
//
// See the examples directory for transactional, analytical, and networked
// usage, and DESIGN.md for the architecture.
package spitz

import (
	"io"
	"net"

	"spitz/internal/cas"
	"spitz/internal/cellstore"
	"spitz/internal/core"
	"spitz/internal/ledger"
	"spitz/internal/mtree"
	"spitz/internal/proof"
	"spitz/internal/query"
	"spitz/internal/txn"
	"spitz/internal/wire"
)

// Re-exported core types. The aliases keep one canonical definition while
// letting applications depend only on this package.
type (
	// Cell is one value of one column of one row at one version.
	Cell = cellstore.Cell
	// Put is one cell write in a batch.
	Put = core.Put
	// Digest is the compact ledger commitment a client saves locally.
	Digest = ledger.Digest
	// Proof is the integrity proof attached to a verified query result.
	Proof = ledger.Proof
	// ConsistencyProof shows one digest's ledger is a prefix of another's.
	ConsistencyProof = mtree.ConsistencyProof
	// BlockHeader describes one committed ledger block.
	BlockHeader = ledger.BlockHeader
	// VerifiedResult carries a result with its proof and digest.
	VerifiedResult = core.VerifiedResult
	// Verifier tracks a client's trusted digest and checks proofs.
	Verifier = proof.Verifier
	// Txn is an interactive serializable transaction.
	Txn = core.Txn
)

// Concurrency control modes for Options.Mode.
const (
	// ModeOCC validates read sets at commit (optimistic; the default).
	ModeOCC = txn.ModeOCC
	// ModeTO orders transactions by start timestamp.
	ModeTO = txn.ModeTO
)

// Sentinel errors.
var (
	// ErrNotFound is returned by Get for absent or deleted cells.
	ErrNotFound = core.ErrNotFound
	// ErrConflict is returned by Txn.Commit on serialization conflicts.
	ErrConflict = txn.ErrConflict
	// ErrTampered is returned by Verifier methods when verification fails.
	ErrTampered = proof.ErrTampered
)

// Options configures Open.
type Options struct {
	// Mode selects the concurrency control scheme (default ModeOCC).
	Mode txn.Mode
	// MaintainInverted enables the inverted index for value lookups
	// (LookupEqual, LookupNumericRange) at some write cost.
	MaintainInverted bool
}

// DB is an embedded Spitz database. Safe for concurrent use.
type DB struct {
	eng *core.Engine
}

// Open creates an in-memory verifiable database.
func Open(opts Options) *DB {
	return &DB{eng: core.New(core.Options{
		Store:            cas.NewMemory(),
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
	})}
}

// NewVerifier returns a client-side proof verifier with no pinned digest;
// the first Advance pins trust-on-first-use.
func NewVerifier() *Verifier { return proof.NewVerifier() }

// Apply commits a batch of writes as one ledger block (group commit) and
// returns its header. statement is recorded in the block for auditing.
func (db *DB) Apply(statement string, puts []Put) (BlockHeader, error) {
	return db.eng.Apply(statement, puts)
}

// PutRow writes all columns of one row in a single block.
func (db *DB) PutRow(table string, pk []byte, columns map[string][]byte) (BlockHeader, error) {
	puts := make([]Put, 0, len(columns))
	for col, val := range columns {
		puts = append(puts, Put{Table: table, Column: col, PK: pk, Value: val})
	}
	return db.Apply("PUT ROW "+table, puts)
}

// Get returns the latest live value of a cell, or ErrNotFound.
func (db *DB) Get(table, column string, pk []byte) ([]byte, error) {
	return db.eng.Get(table, column, pk)
}

// GetRow reads the given columns of one row; absent columns are omitted.
func (db *DB) GetRow(table string, pk []byte, columns []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(columns))
	for _, col := range columns {
		v, err := db.Get(table, col, pk)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[col] = v
	}
	return out, nil
}

// GetVerified returns the latest version of a cell together with its
// integrity proof and the digest it verifies against.
func (db *DB) GetVerified(table, column string, pk []byte) (VerifiedResult, error) {
	return db.eng.GetVerified(table, column, pk)
}

// RangePK scans the latest live cells of one column with primary keys in
// [pkLo, pkHi); nil bounds are open.
func (db *DB) RangePK(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	return db.eng.RangePK(table, column, pkLo, pkHi)
}

// RangePKVerified scans a primary-key range with one proof covering the
// complete result set.
func (db *DB) RangePKVerified(table, column string, pkLo, pkHi []byte) (VerifiedResult, error) {
	return db.eng.RangePKVerified(table, column, pkLo, pkHi)
}

// History returns every version of a cell, newest first, including
// tombstones.
func (db *DB) History(table, column string, pk []byte) ([]Cell, error) {
	return db.eng.History(table, column, pk)
}

// GetAt reads a cell as of a historical ledger block (time travel).
func (db *DB) GetAt(height uint64, table, column string, pk []byte) (Cell, bool, error) {
	return db.eng.GetAt(height, table, column, pk)
}

// LookupEqual returns cells of one column whose latest value equals value
// (requires Options.MaintainInverted).
func (db *DB) LookupEqual(table, column string, value []byte) ([]Cell, error) {
	return db.eng.LookupEqual(table, column, value)
}

// LookupNumericRange returns cells whose 8-byte big-endian numeric value
// lies in [lo, hi) (requires Options.MaintainInverted).
func (db *DB) LookupNumericRange(table, column string, lo, hi uint64) ([]Cell, error) {
	return db.eng.LookupNumericRange(table, column, lo, hi)
}

// Begin starts an interactive serializable transaction.
func (db *DB) Begin() *Txn { return db.eng.Begin() }

// Digest returns the current ledger digest; clients save it and verify
// later proofs (and history consistency) against it.
func (db *DB) Digest() Digest { return db.eng.Digest() }

// ConsistencyProof proves that the current ledger extends the one
// committed by old — history was appended to, never rewritten.
func (db *DB) ConsistencyProof(old Digest) (ConsistencyProof, error) {
	return db.eng.ConsistencyProof(old)
}

// Height returns the number of committed ledger blocks.
func (db *DB) Height() uint64 { return db.eng.Ledger().Height() }

// Block returns the header of the block at the given height.
func (db *DB) Block(height uint64) (BlockHeader, error) {
	return db.eng.Ledger().Header(height)
}

// Serve exposes the database over a listener using the Spitz wire
// protocol; it blocks until the listener closes. Use Client to connect.
func (db *DB) Serve(ln net.Listener) error {
	return wire.NewServer(db.eng).Serve(ln)
}

// QueryResult is the outcome of Exec: rows for SELECT/HISTORY, an affected
// count and block height for mutations.
type QueryResult = query.Result

// QueryRow is one result row.
type QueryRow = query.Row

// Exec parses and executes one SQL statement (the paper's SQL interface):
//
//	INSERT INTO t (pk, col, ...) VALUES ('k', 'v', ...)
//	SELECT col, ... | * FROM t WHERE pk = 'k' | pk BETWEEN 'a' AND 'b'
//	UPDATE t SET col = 'v' WHERE pk = 'k'
//	DELETE FROM t WHERE pk = 'k'
//	HISTORY t.col WHERE pk = 'k'
//
// Mutating statements are recorded verbatim in their ledger block.
func (db *DB) Exec(statement string) (QueryResult, error) {
	return query.Exec(db.eng, statement)
}

// PutDocument stores a JSON document (the paper's self-defined JSON
// schema): fields map to columns, nested objects to dotted paths, so each
// field gets cell-level history and verifiability. It returns the block
// height of the commit.
func (db *DB) PutDocument(table string, pk []byte, doc []byte) (uint64, error) {
	return query.PutDocument(db.eng, table, pk, doc)
}

// GetDocument reassembles the latest version of a document.
func (db *DB) GetDocument(table string, pk []byte) ([]byte, bool, error) {
	return query.GetDocument(db.eng, table, pk)
}

// Columns lists the columns ever written to a table.
func (db *DB) Columns(table string) []string { return db.eng.Columns(table) }

// WriteSnapshot serializes the database to w for restart durability:
// block headers, the version index, and every live object. Restore the
// stream with Restore.
func (db *DB) WriteSnapshot(w io.Writer) error { return db.eng.WriteSnapshot(w) }

// Restore reconstructs a database from a snapshot written by
// WriteSnapshot. Every object is re-inserted through content addressing
// and the block chain revalidated, so tampered snapshots are rejected;
// clients' saved digests keep verifying against the restored database.
func Restore(opts Options, r io.Reader) (*DB, error) {
	eng, err := core.Restore(core.Options{
		Store:            cas.NewMemory(),
		Mode:             opts.Mode,
		MaintainInverted: opts.MaintainInverted,
	}, r)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}
