package spitz_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"spitz"
	"spitz/internal/core"
	"spitz/internal/wire"
)

// End-to-end coverage of the networked query surface: statements routed
// through OpQuery against single servers and clusters, with every
// SELECT's batch proof verified client-side, plus the adversarial side —
// byte-flip sweeps and structured forgeries against query proofs, in
// both eager and deferred (AuditMode) verification.

func serveQueryDB(t *testing.T) (*spitz.DB, *spitz.Client) {
	t.Helper()
	db := spitz.Open(spitz.Options{MaintainInverted: true})
	ln, _ := wire.Listen()
	go db.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	wc, err := wire.Connect(ln)
	if err != nil {
		t.Fatal(err)
	}
	cl := spitz.NewClient(wc)
	t.Cleanup(func() { cl.Close() })
	return db, cl
}

func mustQuery(t *testing.T, q interface {
	Query(string) (spitz.QueryResult, error)
}, stmt string) spitz.QueryResult {
	t.Helper()
	res, err := q.Query(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

func seedInventoryQueries(t *testing.T, q interface {
	Query(string) (spitz.QueryResult, error)
}) {
	t.Helper()
	for _, stmt := range []string{
		"INSERT INTO inv (pk, stock, status) VALUES ('item-a', '10', 'live')",
		"INSERT INTO inv (pk, stock, status) VALUES ('item-b', '20', 'hold')",
		"INSERT INTO inv (pk, stock, status) VALUES ('item-c', '30', 'live')",
		"INSERT INTO inv (pk, stock, status) VALUES ('item-z', '99', 'live')",
	} {
		if res := mustQuery(t, q, stmt); res.RowsAffected != 1 {
			t.Fatalf("%s: RowsAffected = %d", stmt, res.RowsAffected)
		}
	}
}

// TestClientQueryEndToEnd drives the full statement surface over a real
// connection: mutations, verified range/point/lookup/aggregate SELECTs
// and HISTORY, all through Client.Query.
func TestClientQueryEndToEnd(t *testing.T) {
	_, cl := serveQueryDB(t)
	seedInventoryQueries(t, cl)

	// Range scan with a boolean predicate: complete, proven, filtered.
	res := mustQuery(t, cl, "SELECT stock FROM inv WHERE pk BETWEEN 'item-a' AND 'item-z' AND status = 'live'")
	if len(res.Rows) != 3 {
		t.Fatalf("range rows = %d, want 3", len(res.Rows))
	}
	if string(res.Rows[0].PK) != "item-a" || string(res.Rows[0].Columns["stock"]) != "10" {
		t.Fatalf("row 0 = %s %q", res.Rows[0].PK, res.Rows[0].Columns["stock"])
	}
	if string(res.Rows[2].PK) != "item-z" {
		t.Fatalf("rows not in pk order: %s", res.Rows[2].PK)
	}

	// Point SELECT.
	res = mustQuery(t, cl, "SELECT stock FROM inv WHERE pk = 'item-b'")
	if len(res.Rows) != 1 || string(res.Rows[0].Columns["stock"]) != "20" {
		t.Fatalf("point select: %+v", res.Rows)
	}

	// Lookup through the inverted index (predicate only).
	res = mustQuery(t, cl, "SELECT stock FROM inv WHERE status = 'hold'")
	if len(res.Rows) != 1 || string(res.Rows[0].PK) != "item-b" {
		t.Fatalf("lookup select: %+v", res.Rows)
	}

	// Verified aggregates, re-folded client-side from proven cells.
	res = mustQuery(t, cl, "SELECT COUNT(stock) FROM inv WHERE pk BETWEEN 'item-a' AND 'item-z'")
	if !res.HasAgg || res.AggValue != 4 {
		t.Fatalf("COUNT = %d (hasAgg %v)", res.AggValue, res.HasAgg)
	}
	res = mustQuery(t, cl, "SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'item-a' AND 'item-z' AND status = 'live'")
	if !res.HasAgg || res.AggValue != 139 {
		t.Fatalf("SUM = %d (hasAgg %v)", res.AggValue, res.HasAgg)
	}

	// UPDATE of a live row commits; of an absent row affects nothing.
	if res := mustQuery(t, cl, "UPDATE inv SET stock = '11' WHERE pk = 'item-a'"); res.RowsAffected != 1 || res.Block == 0 {
		t.Fatalf("update: %+v", res)
	}
	if res := mustQuery(t, cl, "UPDATE inv SET stock = '1' WHERE pk = 'item-x'"); res.RowsAffected != 0 {
		t.Fatalf("absent update affected %d rows", res.RowsAffected)
	}
	res = mustQuery(t, cl, "SELECT stock FROM inv WHERE pk = 'item-a'")
	if string(res.Rows[0].Columns["stock"]) != "11" {
		t.Fatalf("update not visible: %q", res.Rows[0].Columns["stock"])
	}

	// DELETE drops the row from verified lookups (tombstones filtered in
	// the index) and from range scans.
	if res := mustQuery(t, cl, "DELETE FROM inv WHERE pk = 'item-b'"); res.RowsAffected != 1 {
		t.Fatalf("delete: %+v", res)
	}
	if res := mustQuery(t, cl, "SELECT stock FROM inv WHERE status = 'hold'"); len(res.Rows) != 0 {
		t.Fatalf("deleted row still surfaced by index: %+v", res.Rows)
	}
	if res := mustQuery(t, cl, "SELECT COUNT(stock) FROM inv WHERE pk BETWEEN 'item-a' AND 'item-z'"); res.AggValue != 3 {
		t.Fatalf("COUNT after delete = %d", res.AggValue)
	}

	// HISTORY: item-a's stock has two versions, newest first.
	res = mustQuery(t, cl, "HISTORY inv.stock WHERE pk = 'item-a'")
	if len(res.Rows) != 2 || string(res.Rows[0].Columns["stock"]) != "11" {
		t.Fatalf("history: %+v", res.Rows)
	}
	if len(res.Rows[0].Columns["@version"]) == 0 {
		t.Fatal("history rows carry no @version")
	}

	// Trust advanced along the way: the verifier holds a pinned digest.
	if cl.Verifier().Digest().Height == 0 {
		t.Fatal("verifier never advanced")
	}
}

// TestShardedClientQuery runs the same surface against a 4-shard
// cluster over one listener: mutations 2PC through the coordinator,
// point queries route to owning shards, scans and aggregates fan out
// and merge per-shard verified results.
func TestShardedClientQuery(t *testing.T) {
	db, err := spitz.OpenCluster("", spitz.ClusterOptions{Shards: 4, MaintainInverted: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, dial := serveCluster(t, db)
	defer ln.Close()
	sc, err := spitz.NewShardedClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	var wantSum uint64
	for i := 0; i < 20; i++ {
		status := "live"
		if i%3 == 0 {
			status = "hold"
		} else {
			wantSum += uint64(i)
		}
		stmt := fmt.Sprintf("INSERT INTO inv (pk, stock, status) VALUES ('it%02d', '%d', '%s')", i, i, status)
		if res := mustQuery(t, sc, stmt); res.RowsAffected != 1 {
			t.Fatalf("%s: %+v", stmt, res)
		}
	}

	// Fan-out range scan merges into pk order across shards.
	res := mustQuery(t, sc, "SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it19'")
	if len(res.Rows) != 20 {
		t.Fatalf("fan-out rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if want := fmt.Sprintf("it%02d", i); string(r.PK) != want {
			t.Fatalf("row %d: pk %s, want %s", i, r.PK, want)
		}
	}

	// Aggregates add disjoint per-shard partials.
	res = mustQuery(t, sc, "SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'it00' AND 'it19' AND status = 'live'")
	if !res.HasAgg || res.AggValue != wantSum {
		t.Fatalf("sharded SUM = %d, want %d", res.AggValue, wantSum)
	}
	res = mustQuery(t, sc, "SELECT COUNT(stock) FROM inv WHERE pk BETWEEN 'it00' AND 'it19' AND status = 'hold'")
	if res.AggValue != 7 {
		t.Fatalf("sharded COUNT = %d, want 7", res.AggValue)
	}

	// Index lookups fan out too.
	res = mustQuery(t, sc, "SELECT stock FROM inv WHERE status = 'hold'")
	if len(res.Rows) != 7 {
		t.Fatalf("sharded lookup rows = %d", len(res.Rows))
	}

	// Point query routes to the owning shard.
	res = mustQuery(t, sc, "SELECT stock FROM inv WHERE pk = 'it07'")
	if len(res.Rows) != 1 || string(res.Rows[0].Columns["stock"]) != "7" {
		t.Fatalf("sharded point: %+v", res.Rows)
	}

	// Mutations through the coordinator, visible to verified reads.
	if res := mustQuery(t, sc, "UPDATE inv SET status = 'live' WHERE pk = 'it00'"); res.RowsAffected != 1 {
		t.Fatalf("sharded update: %+v", res)
	}
	if res := mustQuery(t, sc, "DELETE FROM inv WHERE pk = 'it03'"); res.RowsAffected != 1 {
		t.Fatalf("sharded delete: %+v", res)
	}
	res = mustQuery(t, sc, "SELECT COUNT(status) FROM inv WHERE pk BETWEEN 'it00' AND 'it19' AND status = 'hold'")
	if res.AggValue != 5 {
		t.Fatalf("COUNT after update+delete = %d, want 5", res.AggValue)
	}

	// HISTORY routes by pk.
	res = mustQuery(t, sc, "HISTORY inv.status WHERE pk = 'it00'")
	if len(res.Rows) != 2 {
		t.Fatalf("sharded history rows = %d", len(res.Rows))
	}
}

// ---------------------------------------------------------------------------
// Adversarial coverage

// queryFaultServer wraps an inverted-index engine behind a response
// mutator, like audit_fault_test's faultServer but seeded for the query
// surface.
type queryFaultServer struct {
	eng   *core.Engine
	inner net.Listener

	mu     sync.Mutex
	mutate func(req wire.Request, resp *wire.Response)
}

func startQueryFaultServer(t *testing.T) *queryFaultServer {
	t.Helper()
	fs := &queryFaultServer{eng: core.New(core.Options{MaintainInverted: true})}
	for i := 0; i < 8; i++ {
		status := "live"
		if i%2 == 1 {
			status = "hold"
		}
		if _, err := fs.eng.Apply("seed", []core.Put{
			{Table: "inv", Column: "stock", PK: []byte(fmt.Sprintf("it%02d", i)), Value: []byte(fmt.Sprintf("%d", i+1))},
			{Table: "inv", Column: "status", PK: []byte(fmt.Sprintf("it%02d", i)), Value: []byte(status)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fs.inner, _ = wire.Listen()
	srv := wire.NewHandlerServer(wire.MutateHandler(wire.EngineHandler(fs.eng),
		func(req wire.Request, resp *wire.Response) {
			fs.mu.Lock()
			m := fs.mutate
			fs.mu.Unlock()
			if m != nil {
				m(req, resp)
			}
		}))
	go srv.Serve(fs.inner)
	t.Cleanup(func() { srv.Close() })
	return fs
}

func (fs *queryFaultServer) setMutate(m func(req wire.Request, resp *wire.Response)) {
	fs.mu.Lock()
	fs.mutate = m
	fs.mu.Unlock()
}

func (fs *queryFaultServer) client(t *testing.T) *spitz.Client {
	t.Helper()
	wc, err := wire.Connect(fs.inner)
	if err != nil {
		t.Fatal(err)
	}
	return spitz.NewClient(wc)
}

// queryProofByteSlices enumerates every mutable byte slice of an
// OpQuery SELECT response — proof nodes, proven values and entries,
// keys, range bounds, inclusion hashes, the digest root — in a stable
// order for the tamper sweep.
func queryProofByteSlices(resp *wire.Response) [][]byte {
	bp := resp.BatchProof
	if bp == nil {
		return nil
	}
	var out [][]byte
	if bp.Points != nil {
		out = append(out, bp.Points.Nodes...)
		for _, v := range bp.Points.Values {
			if len(v) > 0 {
				out = append(out, v)
			}
		}
		out = append(out, bp.Points.Keys...)
	}
	for i := range bp.Ranges {
		out = append(out, bp.Ranges[i].Nodes...)
		for _, e := range bp.Ranges[i].Entries {
			if len(e.Key) > 0 {
				out = append(out, e.Key)
			}
			if len(e.Value) > 0 {
				out = append(out, e.Value)
			}
		}
		out = append(out, bp.Ranges[i].Start, bp.Ranges[i].End)
	}
	for i := range bp.Inclusion.Path {
		out = append(out, bp.Inclusion.Path[i][:])
	}
	out = append(out, resp.Digest.Root[:])
	return out
}

// TestQueryProofEveryByteTrips sweeps a byte flip across the entire
// batch proof of each eager query kind — range+predicate, aggregate,
// and index lookup — and requires every flip to surface as ErrTampered:
// zero silent acceptance for the query surface.
func TestQueryProofEveryByteTrips(t *testing.T) {
	fs := startQueryFaultServer(t)
	stmts := []struct {
		name, stmt string
	}{
		{"range", "SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07' AND status = 'live'"},
		{"aggregate", "SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'it00' AND 'it07'"},
		{"lookup", "SELECT stock FROM inv WHERE status = 'hold'"},
	}
	for _, tc := range stmts {
		t.Run(tc.name, func(t *testing.T) {
			var total int
			fs.setMutate(func(req wire.Request, resp *wire.Response) {
				if req.Op == wire.OpQuery && resp.BatchProof != nil {
					total = 0
					for _, s := range queryProofByteSlices(resp) {
						total += len(s)
					}
				}
			})
			cl := fs.client(t)
			if _, err := cl.Query(tc.stmt); err != nil {
				t.Fatalf("honest query failed: %v", err)
			}
			cl.Close()
			if total == 0 {
				t.Fatal("no proof bytes enumerated")
			}
			step := 1
			if testing.Short() {
				step = 17
			}
			for off := 0; off < total; off += step {
				off := off
				fs.setMutate(func(req wire.Request, resp *wire.Response) {
					if req.Op != wire.OpQuery || resp.BatchProof == nil {
						return
					}
					detachResponse(t, resp)
					k := off
					for _, s := range queryProofByteSlices(resp) {
						if k < len(s) {
							s[k] ^= 0x01
							return
						}
						k -= len(s)
					}
				})
				cl := fs.client(t)
				_, err := cl.Query(tc.stmt)
				if err == nil {
					t.Fatalf("byte %d: tampered query proof passed silently", off)
				}
				if !errors.Is(err, spitz.ErrTampered) {
					t.Fatalf("byte %d: tamper misreported as %v", off, err)
				}
				cl.Close()
			}
			fs.setMutate(nil)
		})
	}
}

// TestQueryStructuredForgeries covers the forgeries a lying server
// could attempt on the query path beyond single byte flips: dropping
// the proof while claiming rows, narrowing a proven range, claiming an
// empty ledger after trust is pinned, and smuggling rows the proof does
// not cover.
func TestQueryStructuredForgeries(t *testing.T) {
	const rangeStmt = "SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07'"
	cases := []struct {
		name string
		stmt string
		mut  func(resp *wire.Response)
	}{
		{"omit the proof", rangeStmt, func(r *wire.Response) { r.BatchProof = nil }},
		{"claim an empty ledger", rangeStmt, func(r *wire.Response) { *r = wire.Response{} }},
		{"narrow the proven range", rangeStmt, func(r *wire.Response) {
			rp := &r.BatchProof.Ranges[0]
			rp.End = append([]byte(nil), rp.Start...)
			rp.Entries = nil
			rp.Nodes = rp.Nodes[:1]
		}},
		{"drop a proven entry", rangeStmt, func(r *wire.Response) {
			rp := &r.BatchProof.Ranges[0]
			rp.Entries = rp.Entries[:len(rp.Entries)-1]
		}},
		{"smuggle an unproven row", "SELECT stock FROM inv WHERE status = 'hold'", func(r *wire.Response) {
			forged := r.Cells[0]
			forged.PK = []byte("it99")
			forged.Value = []byte("9999")
			r.Cells = append(r.Cells, forged)
		}},
		{"swap the aggregate column proof", "SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'it00' AND 'it07'", func(r *wire.Response) {
			// Proof for a different column must not satisfy the plan.
			rp := &r.BatchProof.Ranges[0]
			rp.Start = append([]byte(nil), rp.End...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := startQueryFaultServer(t)
			cl := fs.client(t)
			defer cl.Close()
			// Pin trust with one honest query first, so claimed-empty and
			// proof-less responses cannot hide behind bootstrap.
			if _, err := cl.Query(rangeStmt); err != nil {
				t.Fatalf("honest query: %v", err)
			}
			fs.setMutate(func(req wire.Request, resp *wire.Response) {
				if req.Op == wire.OpQuery && resp.Err == "" {
					detachResponse(t, resp)
					tc.mut(resp)
				}
			})
			_, err := cl.Query(tc.stmt)
			if err == nil {
				t.Fatalf("%s: passed silently", tc.name)
			}
			if !errors.Is(err, spitz.ErrTampered) {
				t.Fatalf("%s: misreported as %v", tc.name, err)
			}
		})
	}
}

// TestQueryAuditMode exercises the deferred path: SELECTs are accepted
// optimistically with one receipt per proof obligation, an honest flush
// verifies them all, and a forged value or an omitted row is caught at
// the flush — completeness holds in audit mode too.
func TestQueryAuditMode(t *testing.T) {
	t.Run("honest flush passes", func(t *testing.T) {
		fs := startQueryFaultServer(t)
		cl := fs.client(t)
		defer cl.Close()
		aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Query("SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07' AND status = 'live'")
		if err != nil || len(res.Rows) != 4 {
			t.Fatalf("optimistic range: %d rows, %v", len(res.Rows), err)
		}
		res, err = cl.Query("SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'it00' AND 'it07'")
		if err != nil || res.AggValue != 36 {
			t.Fatalf("optimistic SUM = %d, %v", res.AggValue, err)
		}
		res, err = cl.Query("SELECT stock FROM inv WHERE pk = 'it02'")
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("optimistic point: %+v, %v", res.Rows, err)
		}
		res, err = cl.Query("SELECT stock FROM inv WHERE status = 'hold'")
		if err != nil || len(res.Rows) != 4 {
			t.Fatalf("optimistic lookup: %d rows, %v", len(res.Rows), err)
		}
		if aud.Pending() == 0 {
			t.Fatal("no receipts enqueued")
		}
		if err := aud.Flush(); err != nil {
			t.Fatalf("honest flush failed: %v", err)
		}
	})

	forgeries := []struct {
		name string
		stmt string
		mut  func(resp *wire.Response)
	}{
		{"forged value", "SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07'", func(r *wire.Response) {
			r.Cells[0].Value = []byte("9999")
		}},
		{"omitted row", "SELECT stock FROM inv WHERE pk BETWEEN 'it00' AND 'it07'", func(r *wire.Response) {
			r.Cells = r.Cells[1:]
		}},
		{"forged point", "SELECT stock FROM inv WHERE pk = 'it03'", func(r *wire.Response) {
			r.Cells[0].Value = []byte("0")
		}},
	}
	for _, tc := range forgeries {
		t.Run(tc.name, func(t *testing.T) {
			fs := startQueryFaultServer(t)
			cl := fs.client(t)
			defer cl.Close()
			aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			fs.setMutate(func(req wire.Request, resp *wire.Response) {
				if req.Op == wire.OpQuery && len(resp.Cells) > 0 {
					detachResponse(t, resp)
					tc.mut(resp)
				}
			})
			if _, err := cl.Query(tc.stmt); err != nil {
				t.Fatalf("optimistic accept failed: %v", err)
			}
			err = aud.Flush()
			if err == nil {
				t.Fatalf("%s: audit passed silently", tc.name)
			}
			if !errors.Is(err, spitz.ErrTampered) {
				t.Fatalf("%s: misreported as %v", tc.name, err)
			}
		})
	}
}

// TestQueryConcurrentChurn hammers verified queries over the wire while
// writes commit concurrently — under the race detector this doubles as
// the index-maintenance-vs-commit race check on the networked path, and
// in any mode it asserts no false tampering under digest churn.
func TestQueryConcurrentChurn(t *testing.T) {
	db, cl := serveQueryDB(t)
	seedInventoryQueries(t, cl)
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 64)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Exec(fmt.Sprintf("UPDATE inv SET stock = '%d' WHERE pk = 'item-a'", i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := cl.Query("SELECT SUM(stock) FROM inv WHERE pk BETWEEN 'item-a' AND 'item-z' AND status = 'live'"); err != nil {
				errs <- err
				return
			}
			if _, err := cl.Query("SELECT stock FROM inv WHERE status = 'hold'"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("churn: %v", err)
	}
}
