package spitz

import (
	"errors"
	"fmt"
	"sync"

	"spitz/internal/wire"
)

// ReplicatedOptions configures DialReplicated.
type ReplicatedOptions struct {
	// MaxLag, when non-zero, bounds how many blocks behind the trusted
	// primary digest a replica-served result may be: a verifiably honest
	// but older result is rejected with ErrStale (and the read retried on
	// the primary) instead of silently served. Zero accepts any verified
	// prefix, however stale.
	MaxLag uint64
}

// ReplicatedClient distributes reads across a set of untrusted read
// replicas and routes writes (and all trust decisions) to the primary.
//
// Every verified read is checked with the client's single verifier,
// whose trusted digest only ever advances against the primary: a proof
// served by a replica at digest d is accepted only after the primary
// proves — with an ordinary consistency proof — that d is a prefix of
// the trusted history. A tampering replica is therefore detected exactly
// like a tampering server, and a lagging replica serves verifiably stale
// data, bounded by MaxLag. Replicas that are down — at connect time or
// later — are skipped (reads fail over to the remaining replicas, then
// the primary); they are not redialled — reconnect by building a new
// client.
//
// Safe for concurrent use.
type ReplicatedClient struct {
	primary  *wire.Client
	verifier *Verifier
	syncMu   sync.Mutex // serializes digest refreshes across all links
	maxLag   uint64

	auditHolder

	mu       sync.Mutex
	replicas []*replicaConn
	rr       int // round-robin cursor
}

type replicaConn struct {
	c    *wire.Client
	down bool
}

// DialReplicated connects to a primary Spitz server and any number of
// read replicas of it (spitz-server -replicate-from). The primary must
// be a single-engine deployment; for sharded ones connect a DialSharded
// client to the replica set directly.
func DialReplicated(network, primaryAddr string, replicaAddrs []string, opts ReplicatedOptions) (*ReplicatedClient, error) {
	dials := make([]func() (*wire.Client, error), len(replicaAddrs))
	for i, addr := range replicaAddrs {
		addr := addr
		dials[i] = func() (*wire.Client, error) { return wire.Dial(network, addr) }
	}
	return NewReplicatedClient(func() (*wire.Client, error) { return wire.Dial(network, primaryAddr) }, dials, opts)
}

// NewReplicatedClient builds a replicated client from dialling functions
// — the transport-agnostic form DialReplicated wraps (tests and
// benchmarks use it with in-process pipe listeners). Trust is pinned to
// the primary's digest at connect time, so even the very first
// replica-served read must prove its digest is a prefix of the
// primary's history.
func NewReplicatedClient(dialPrimary func() (*wire.Client, error),
	dialReplicas []func() (*wire.Client, error), opts ReplicatedOptions) (*ReplicatedClient, error) {
	primary, err := dialPrimary()
	if err != nil {
		return nil, err
	}
	rc := &ReplicatedClient{primary: primary, verifier: NewVerifier(), maxLag: opts.MaxLag}
	resp, err := primary.Do(wire.Request{Op: wire.OpShardMap})
	if err != nil {
		primary.Close()
		return nil, fmt.Errorf("spitz: shard map: %w", err)
	}
	if resp.ShardCount > 1 {
		primary.Close()
		return nil, fmt.Errorf("spitz: DialReplicated serves single-engine primaries; the server reports %d shards (use DialSharded against the replica set)", resp.ShardCount)
	}
	// Pin trust to the primary before the first replica read. (A primary
	// still at height 0 leaves the verifier unpinned; the first verified
	// read then bootstraps trust from the primary, never the replica.)
	dresp, err := primary.Do(wire.Request{Op: wire.OpDigest})
	if err != nil {
		primary.Close()
		return nil, err
	}
	if dresp.Digest.Height > 0 {
		if err := rc.verifier.Advance(dresp.Digest, ConsistencyProof{}); err != nil {
			primary.Close()
			return nil, err
		}
	}
	for _, dial := range dialReplicas {
		c, err := dial()
		if err != nil {
			// A replica that is down at connect time is exactly what the
			// failover machinery exists for: run on the survivors.
			continue
		}
		rc.replicas = append(rc.replicas, &replicaConn{c: c})
	}
	return rc, nil
}

// Close releases every connection (closing the auditor first when
// AuditMode is active; its final flush error is returned if nothing else
// fails).
func (rc *ReplicatedClient) Close() error {
	auditErr := rc.closeAudit()
	err := rc.primary.Close()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, r := range rc.replicas {
		if cerr := r.c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	return auditErr
}

// StartAudit switches the replicated client into deferred verification
// (see AuditMode). Optimistic reads keep round-robining over the
// replicas; the batch audits run against the primary — the digest
// authority — so a tampering replica is caught exactly as in eager mode:
// its digest fails the primary's prefix proof, or its values fail the
// primary's batch proof.
func (rc *ReplicatedClient) StartAudit(mode AuditMode) (*Auditor, error) {
	return rc.startAudit(mode, func(int) shardLink { return rc.primaryLink() })
}

// Verifier exposes the client's proof verifier; its digest is the
// primary-anchored trust every replica read is checked against.
func (rc *ReplicatedClient) Verifier() *Verifier { return rc.verifier }

// Replicas returns how many replicas are still considered healthy.
func (rc *ReplicatedClient) Replicas() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for _, r := range rc.replicas {
		if !r.down {
			n++
		}
	}
	return n
}

// primaryLink reads from the primary itself (write path, or read
// fallback when every replica is down or too stale).
func (rc *ReplicatedClient) primaryLink() shardLink {
	return shardLink{c: rc.primary, v: rc.verifier, mu: &rc.syncMu}
}

// replicaLink reads from a replica, with trust anchored at the primary.
func (rc *ReplicatedClient) replicaLink(r *replicaConn) shardLink {
	return shardLink{c: r.c, v: rc.verifier, mu: &rc.syncMu, syncC: rc.primary, maxLag: rc.maxLag}
}

// nextReplicas snapshots the healthy replicas in round-robin order.
func (rc *ReplicatedClient) nextReplicas() []*replicaConn {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]*replicaConn, 0, len(rc.replicas))
	for i := 0; i < len(rc.replicas); i++ {
		r := rc.replicas[(rc.rr+i)%len(rc.replicas)]
		if !r.down {
			out = append(out, r)
		}
	}
	rc.rr++
	return out
}

func (rc *ReplicatedClient) markDown(r *replicaConn) {
	rc.mu.Lock()
	r.down = true
	rc.mu.Unlock()
}

// doRead runs fn against replicas in round-robin order, failing over on
// transport errors and falling back to the primary when no replica can
// serve (all down, none configured, or the result was too stale).
func (rc *ReplicatedClient) doRead(fn func(l shardLink) error) error {
	for _, r := range rc.nextReplicas() {
		err := fn(rc.replicaLink(r))
		switch {
		case err == nil:
			return nil
		case errors.Is(err, errPrimarySync):
			// The digest authority failed, not the replica that served
			// the data: blaming the replica would mark the whole fleet
			// down over a primary outage.
			return err
		case errors.Is(err, wire.ErrTransport):
			rc.markDown(r) // dead replica: fail over
		case errors.Is(err, ErrStale):
			return fn(rc.primaryLink()) // verifiably honest but too old
		default:
			return err
		}
	}
	return fn(rc.primaryLink())
}

// Apply commits a batch of writes on the primary and returns the new
// block header.
func (rc *ReplicatedClient) Apply(statement string, puts []Put) (BlockHeader, error) {
	resp, err := rc.primary.Do(wire.Request{Op: wire.OpPut, Statement: statement, Puts: encodePuts(puts)})
	if err != nil {
		return BlockHeader{}, err
	}
	return resp.Header, nil
}

// Get performs an unverified point read on a replica (primary fallback).
func (rc *ReplicatedClient) Get(table, column string, pk []byte) ([]byte, error) {
	var value []byte
	err := rc.doRead(func(l shardLink) error {
		resp, err := l.c.Do(wire.Request{Op: wire.OpGet, Table: table, Column: column, PK: pk})
		if err != nil {
			return err
		}
		if !resp.Found {
			return ErrNotFound
		}
		value = resp.Value
		return nil
	})
	return value, err
}

// GetVerified performs a verified point read on a replica: the proof is
// checked against the replica's digest only after that digest is proven
// — against the primary — to be a prefix of the trusted history. Under
// AuditMode the read is accepted optimistically and the whole chain
// (prefix proof + value proof) is checked in batch against the primary.
func (rc *ReplicatedClient) GetVerified(table, column string, pk []byte) ([]byte, bool, error) {
	aud := rc.auditor()
	var value []byte
	var found bool
	err := rc.doRead(func(l shardLink) error {
		var err error
		if aud != nil {
			value, found, err = l.getOptimistic(aud, 0, table, column, pk)
		} else {
			value, found, err = l.getVerified(table, column, pk)
		}
		return err
	})
	return value, found, err
}

// RangePKVerified performs a verified range scan on a replica, with the
// same primary-anchored trust as GetVerified.
func (rc *ReplicatedClient) RangePKVerified(table, column string, pkLo, pkHi []byte) ([]Cell, error) {
	aud := rc.auditor()
	var cells []Cell
	err := rc.doRead(func(l shardLink) error {
		var err error
		if aud != nil {
			cells, err = l.rangeOptimistic(aud, 0, table, column, pkLo, pkHi)
		} else {
			cells, err = l.rangeVerified(table, column, pkLo, pkHi)
		}
		return err
	})
	return cells, err
}

// History returns all versions of a cell, newest first, from a replica.
func (rc *ReplicatedClient) History(table, column string, pk []byte) ([]Cell, error) {
	var cells []Cell
	err := rc.doRead(func(l shardLink) error {
		resp, err := l.c.Do(wire.Request{Op: wire.OpHistory, Table: table, Column: column, PK: pk})
		if err != nil {
			return err
		}
		cells = resp.Cells
		return nil
	})
	return cells, err
}

// SyncDigest advances the client's trusted digest to the primary's
// current one, verifying a consistency proof.
func (rc *ReplicatedClient) SyncDigest() error {
	resp, err := rc.primary.Do(wire.Request{Op: wire.OpDigest})
	if err != nil {
		return err
	}
	return rc.primaryLink().syncDigest(resp.Digest)
}
