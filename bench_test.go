// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation, plus the design-choice ablations. These run at a fixed
// moderate database size so `go test -bench=.` completes quickly; the full
// 10k-1.28M sweeps that regenerate the figures run via cmd/spitz-bench.
// EXPERIMENTS.md records paper-vs-measured for both.
package spitz_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spitz"
	"spitz/internal/baseline"
	"spitz/internal/cas"
	"spitz/internal/kvs"
	"spitz/internal/mbt"
	"spitz/internal/mpt"
	"spitz/internal/nonintrusive"
	"spitz/internal/postree"
	"spitz/internal/proof"
	"spitz/internal/txn"
	"spitz/internal/txn/hlc"
	"spitz/internal/txn/tso"
	"spitz/internal/workload"
)

const benchSize = 50_000

// fixtures are built once and shared across benchmarks.
var (
	fixOnce    sync.Once
	fixRecords []workload.KeyValue
	fixReads   [][]byte
	fixKVS     *kvs.Store
	fixSpitz   *spitz.DB
	fixSpitzV  *proof.Verifier
	fixBase    *baseline.DB
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixRecords = workload.Records(benchSize, 42)
		fixReads = workload.ReadSequence(fixRecords, 1<<16, 43)

		fixKVS = kvs.New(nil)
		for _, batch := range workload.Batches(fixRecords, 1000) {
			kvb := make([]kvs.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = kvs.KV{Key: kv.Key, Value: kv.Value}
			}
			if err := fixKVS.Apply(kvb); err != nil {
				panic(err)
			}
		}

		fixSpitz = spitz.Open(spitz.Options{})
		for _, batch := range workload.Batches(fixRecords, 1000) {
			if _, err := fixSpitz.Apply("bench load", puts(batch)); err != nil {
				panic(err)
			}
		}
		fixSpitzV = proof.NewVerifier()
		if err := fixSpitzV.Advance(fixSpitz.Digest(), spitz.ConsistencyProof{}); err != nil {
			panic(err)
		}

		fixBase = baseline.New(nil)
		for _, batch := range workload.Batches(fixRecords, 1000) {
			kvb := make([]baseline.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = baseline.KV{Key: kv.Key, Value: kv.Value}
			}
			if err := fixBase.Write(kvb); err != nil {
				panic(err)
			}
		}
		fixBase.Seal()
	})
}

func puts(batch []workload.KeyValue) []spitz.Put {
	out := make([]spitz.Put, len(batch))
	for i, kv := range batch {
		out[i] = spitz.Put{Table: "bench", Column: "v", PK: kv.Key, Value: kv.Value}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 1: storage deduplication

func BenchmarkFig1StorageDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := cas.NewMemory()
		blobs := cas.NewBlobStore(store)
		pages := workload.WikiPages(10, 16*1024, 1)
		rng := rand.New(rand.NewSource(2))
		bodies := make([][]byte, len(pages))
		for j, p := range pages {
			bodies[j] = p.Body
			blobs.PutBlob(p.Body)
		}
		for v := 0; v < 60; v++ {
			j := rng.Intn(len(pages))
			bodies[j] = workload.EditPage(bodies[j], rng)
			blobs.PutBlob(bodies[j])
		}
		if i == 0 {
			st := store.Stats()
			b.ReportMetric(float64(st.PhysicalBytes)/1024, "dedupKB")
			b.ReportMetric(float64(st.LogicalBytes)/1024, "rawKB")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6(a): point reads

func BenchmarkFig6aRead(b *testing.B) {
	fixtures(b)
	b.Run("ImmutableKVS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, _ := fixKVS.Get(fixReads[i%len(fixReads)]); !ok {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("Spitz", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fixSpitz.Get("bench", "v", fixReads[i%len(fixReads)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SpitzVerify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := fixSpitz.GetVerified("bench", "v", fixReads[i%len(fixReads)])
			if err != nil || !res.Found {
				b.Fatal("verified read failed")
			}
			if err := fixSpitzV.VerifyNow(res.Proof); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, _ := fixBase.Get(fixReads[i%len(fixReads)]); !ok {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("BaselineVerify", func(b *testing.B) {
		b.ReportAllocs()
		d := fixBase.Digest()
		for i := 0; i < b.N; i++ {
			rec, ok, p, err := fixBase.VerifiedGet(fixReads[i%len(fixReads)])
			if err != nil || !ok {
				b.Fatal("verified read failed")
			}
			if err := p.Verify(d, rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 6(b): writes (fresh systems so fixtures stay read-only)

func BenchmarkFig6bWrite(b *testing.B) {
	records := workload.Records(benchSize, 42)
	b.Run("ImmutableKVS", func(b *testing.B) {
		s := kvs.New(nil)
		loadKVS(b, s, records)
		updates := workload.UpdateSequence(records, 1<<16, 44)
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := nextBatch(updates, done, b.N)
			kvb := make([]kvs.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = kvs.KV{Key: kv.Key, Value: kv.Value}
			}
			if err := s.Apply(kvb); err != nil {
				b.Fatal(err)
			}
			done += len(batch)
		}
	})
	b.Run("Spitz", func(b *testing.B) {
		db := spitz.Open(spitz.Options{})
		for _, batch := range workload.Batches(records, 1000) {
			db.Apply("load", puts(batch))
		}
		updates := workload.UpdateSequence(records, 1<<16, 44)
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := nextBatch(updates, done, b.N)
			if _, err := db.Apply("bench", puts(batch)); err != nil {
				b.Fatal(err)
			}
			done += len(batch)
		}
	})
	b.Run("Baseline", func(b *testing.B) {
		db := baseline.New(nil)
		for _, batch := range workload.Batches(records, 1000) {
			kvb := make([]baseline.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = baseline.KV{Key: kv.Key, Value: kv.Value}
			}
			db.Write(kvb)
		}
		updates := workload.UpdateSequence(records, 1<<16, 44)
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := nextBatch(updates, done, b.N)
			kvb := make([]baseline.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = baseline.KV{Key: kv.Key, Value: kv.Value}
			}
			if err := db.Write(kvb); err != nil {
				b.Fatal(err)
			}
			done += len(batch)
		}
	})
}

func loadKVS(b *testing.B, s *kvs.Store, records []workload.KeyValue) {
	b.Helper()
	for _, batch := range workload.Batches(records, 1000) {
		kvb := make([]kvs.KV, len(batch))
		for i, kv := range batch {
			kvb[i] = kvs.KV{Key: kv.Key, Value: kv.Value}
		}
		if err := s.Apply(kvb); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 7: range queries at 0.1% selectivity

func BenchmarkFig7Range(b *testing.B) {
	fixtures(b)
	keys := make([][]byte, len(fixRecords))
	for i, r := range fixRecords {
		keys[i] = r.Key
	}
	sortKeys(keys)
	ranges := workload.Ranges(keys, 0.001, 4096, 45)

	b.Run("Spitz", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := ranges[i%len(ranges)]
			cells, err := fixSpitz.RangePK("bench", "v", r.Lo, r.Hi)
			if err != nil || len(cells) != r.Count {
				b.Fatalf("range returned %d, want %d", len(cells), r.Count)
			}
		}
	})
	b.Run("SpitzVerify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := ranges[i%len(ranges)]
			res, err := fixSpitz.RangePKVerified("bench", "v", r.Lo, r.Hi)
			if err != nil {
				b.Fatal(err)
			}
			if err := fixSpitzV.VerifyNow(res.Proof); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := ranges[i%len(ranges)]
			n := 0
			fixBase.Scan(r.Lo, r.Hi, func(_, _ []byte) bool { n++; return true })
			if n != r.Count {
				b.Fatalf("scan returned %d, want %d", n, r.Count)
			}
		}
	})
	b.Run("BaselineVerify", func(b *testing.B) {
		b.ReportAllocs()
		d := fixBase.Digest()
		for i := 0; i < b.N; i++ {
			r := ranges[i%len(ranges)]
			recs, proofs, err := fixBase.VerifiedScan(r.Lo, r.Hi)
			if err != nil {
				b.Fatal(err)
			}
			for j := range recs {
				if err := proofs[j].Verify(d, recs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func sortKeys(keys [][]byte) {
	// Insertion of sort.Slice here would import sort; keep it simple.
	quickSortKeys(keys, 0, len(keys)-1)
}

func quickSortKeys(k [][]byte, lo, hi int) {
	for lo < hi {
		p := partitionKeys(k, lo, hi)
		if p-lo < hi-p {
			quickSortKeys(k, lo, p-1)
			lo = p + 1
		} else {
			quickSortKeys(k, p+1, hi)
			hi = p - 1
		}
	}
}

func partitionKeys(k [][]byte, lo, hi int) int {
	pivot := k[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if string(k[j]) < string(pivot) {
			k[i], k[j] = k[j], k[i]
			i++
		}
	}
	k[i], k[hi] = k[hi], k[i]
	return i
}

// ---------------------------------------------------------------------------
// Figure 8: non-intrusive composition vs embedded Spitz

func BenchmarkFig8NonIntrusive(b *testing.B) {
	records := workload.Records(10_000, 46)
	reads := workload.ReadSequence(records, 1<<14, 47)
	sys, err := nonintrusive.Deploy()
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	for _, batch := range workload.Batches(records, 1000) {
		kvb := make([]nonintrusive.KV, len(batch))
		for i, kv := range batch {
			kvb[i] = nonintrusive.KV{PK: kv.Key, Value: kv.Value}
		}
		if err := sys.Write(kvb); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("Read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, found, err := sys.Read(reads[i%len(reads)]); err != nil || !found {
				b.Fatal("read failed")
			}
		}
	})
	b.Run("ReadVerified", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, found, err := sys.ReadVerified(reads[i%len(reads)]); err != nil || !found {
				b.Fatalf("verified read failed: %v", err)
			}
		}
	})
	b.Run("Write", func(b *testing.B) {
		updates := workload.UpdateSequence(records, 1<<14, 48)
		for done := 0; done < b.N; {
			batch := nextBatch(updates, done, b.N)
			kvb := make([]nonintrusive.KV, len(batch))
			for i, kv := range batch {
				kvb[i] = nonintrusive.KV{PK: kv.Key, Value: kv.Value}
			}
			if err := sys.Write(kvb); err != nil {
				b.Fatal(err)
			}
			done += len(batch)
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation: SIRI family (point get + prove/verify per structure)

func BenchmarkAblationSIRI(b *testing.B) {
	records := workload.Records(20_000, 49)
	reads := workload.ReadSequence(records, 1<<14, 50)

	b.Run("POSTree", func(b *testing.B) {
		tr := postree.Empty(cas.NewMemory())
		var err error
		for _, r := range records {
			if tr, err = tr.Put(r.Key, r.Value); err != nil {
				b.Fatal(err)
			}
		}
		root := tr.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := tr.ProveGet(reads[i%len(reads)])
			if err != nil || p.Verify(root) != nil {
				b.Fatal("prove/verify failed")
			}
		}
	})
	b.Run("MPT", func(b *testing.B) {
		tr := mpt.Empty(cas.NewMemory())
		var err error
		for _, r := range records {
			if tr, err = tr.Put(r.Key, r.Value); err != nil {
				b.Fatal(err)
			}
		}
		root := tr.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := tr.ProveGet(reads[i%len(reads)])
			if err != nil || p.Verify(root) != nil {
				b.Fatal("prove/verify failed")
			}
		}
	})
	b.Run("MBT", func(b *testing.B) {
		tr := mbt.New(cas.NewMemory(), 4096)
		var err error
		for _, r := range records {
			if tr, err = tr.Put(r.Key, r.Value); err != nil {
				b.Fatal(err)
			}
		}
		root := tr.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := tr.ProveGet(reads[i%len(reads)])
			if err != nil || p.Verify(root) != nil {
				b.Fatal("prove/verify failed")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation: online vs deferred verification

func BenchmarkAblationDeferred(b *testing.B) {
	fixtures(b)
	b.Run("Online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := fixSpitz.GetVerified("bench", "v", fixReads[i%len(fixReads)])
			if err != nil {
				b.Fatal(err)
			}
			if err := fixSpitzV.VerifyNow(res.Proof); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DeferredBatch100", func(b *testing.B) {
		b.ReportAllocs()
		v := proof.NewVerifier()
		if err := v.Advance(fixSpitz.Digest(), spitz.ConsistencyProof{}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res, err := fixSpitz.GetVerified("bench", "v", fixReads[i%len(fixReads)])
			if err != nil {
				b.Fatal(err)
			}
			v.Defer(res.Proof)
			if v.Pending() >= 100 {
				if _, err := v.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := v.Flush(); err != nil {
			b.Fatal(err)
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation: timestamp allocation

func BenchmarkAblationTimestamps(b *testing.B) {
	b.Run("OracleShared", func(b *testing.B) {
		o := tso.New(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				o.Next()
			}
		})
	})
	b.Run("HLCPerNode", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			c := hlc.New()
			for pb.Next() {
				c.Now()
			}
		})
	})
}

// ---------------------------------------------------------------------------
// Ablation: concurrency control throughput under moderate contention

func BenchmarkAblationCC(b *testing.B) {
	run := func(b *testing.B, mode txn.Mode) {
		store := txn.NewMemStore()
		mgr := txn.NewManager(store, tso.New(0), mode)
		seed := mgr.Begin()
		for i := 0; i < 1000; i++ {
			seed.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("0"))
		}
		if _, err := seed.Commit(); err != nil {
			b.Fatal(err)
		}
		hot := workload.Zipf(1000, 1<<16, 1.2, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := mgr.Begin()
			t.Get([]byte(fmt.Sprintf("k%04d", hot[(2*i)%len(hot)])))
			t.Put([]byte(fmt.Sprintf("k%04d", hot[(2*i+1)%len(hot)])), []byte("x"))
			t.Commit() // conflicts count as completed attempts
		}
	}
	b.Run("OCC", func(b *testing.B) { run(b, txn.ModeOCC) })
	b.Run("TO", func(b *testing.B) { run(b, txn.ModeTO) })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// nextBatch slices up to 1000 updates starting at done's position in the
// pool, wrapping at the pool boundary and never exceeding the remaining
// benchmark iterations.
func nextBatch(updates []workload.KeyValue, done, n int) []workload.KeyValue {
	start := done % len(updates)
	size := min(1000, n-done)
	if start+size > len(updates) {
		size = len(updates) - start
	}
	return updates[start : start+size]
}
