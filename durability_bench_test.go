package spitz_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"spitz"
)

// BenchmarkDurableCommit measures the cost of commit durability: the
// in-memory engine as baseline against OpenDir under each WAL sync
// policy. SyncAlways pays an fsync per commit (amortized by group commit
// under parallelism — see the /parallel variants), SyncInterval a write
// syscall plus a timer fsync, SyncNever just the write syscall.
func BenchmarkDurableCommit(b *testing.B) {
	var seq atomic.Uint64
	commit := func(db *spitz.DB) error {
		i := seq.Add(1)
		_, err := db.Apply("bench", []spitz.Put{{
			Table: "t", Column: "c",
			PK:    []byte(fmt.Sprintf("pk%08d", i)),
			Value: []byte("value-00000000"),
		}})
		return err
	}

	open := map[string]func(b *testing.B) *spitz.DB{
		"memory": func(b *testing.B) *spitz.DB { return spitz.Open(spitz.Options{}) },
	}
	for _, p := range []spitz.SyncPolicy{spitz.SyncNever, spitz.SyncInterval, spitz.SyncAlways} {
		p := p
		open[p.String()] = func(b *testing.B) *spitz.DB {
			db, err := spitz.OpenDir(b.TempDir(), spitz.Options{
				Sync:               p,
				SyncEvery:          10 * time.Millisecond,
				CheckpointInterval: -1, // isolate WAL cost from checkpoint cost
			})
			if err != nil {
				b.Fatal(err)
			}
			return db
		}
	}

	for _, name := range []string{"memory", "never", "interval", "always"} {
		b.Run(name, func(b *testing.B) {
			db := open[name](b)
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := commit(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The parallel variant shows group commit: many goroutines share
		// each fsync, so SyncAlways throughput scales far better than the
		// serial numbers suggest.
		b.Run(name+"/parallel", func(b *testing.B) {
			db := open[name](b)
			defer db.Close()
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := commit(db); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
