package spitz_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spitz"
)

var benchSeq atomic.Uint64

func benchCommit(db *spitz.DB) error {
	i := benchSeq.Add(1)
	_, err := db.Apply("bench", []spitz.Put{{
		Table: "t", Column: "c",
		PK:    []byte(fmt.Sprintf("pk%08d", i)),
		Value: []byte("value-00000000"),
	}})
	return err
}

// benchOpeners returns a constructor per durability configuration: the
// in-memory engine as baseline against OpenDir under each WAL sync
// policy.
func benchOpeners() map[string]func(b *testing.B) *spitz.DB {
	open := map[string]func(b *testing.B) *spitz.DB{
		"memory": func(b *testing.B) *spitz.DB { return spitz.Open(spitz.Options{}) },
	}
	for _, p := range []spitz.SyncPolicy{spitz.SyncNever, spitz.SyncInterval, spitz.SyncAlways} {
		p := p
		open[p.String()] = func(b *testing.B) *spitz.DB {
			db, err := spitz.OpenDir(b.TempDir(), spitz.Options{
				Sync:               p,
				SyncEvery:          10 * time.Millisecond,
				CheckpointInterval: -1, // isolate WAL cost from checkpoint cost
			})
			if err != nil {
				b.Fatal(err)
			}
			return db
		}
	}
	return open
}

// BenchmarkDurableCommit measures the cost of commit durability.
// SyncAlways pays an fsync per ledger block, SyncInterval a write syscall
// plus a timer fsync, SyncNever just the write syscall. The parallel
// variants exercise the group-commit pipeline: concurrent commits fold
// into shared multi-transaction blocks (one POS-tree apply, one WAL
// frame, one fsync per block), so throughput scales far beyond the
// serial numbers — the txns/block metric shows how hard the batcher is
// working.
func BenchmarkDurableCommit(b *testing.B) {
	open := benchOpeners()
	for _, name := range []string{"memory", "never", "interval", "always"} {
		b.Run(name, func(b *testing.B) {
			db := open[name](b)
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchCommit(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/parallel", func(b *testing.B) {
			db := open[name](b)
			defer db.Close()
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := benchCommit(db); err != nil {
						b.Fatal(err)
					}
				}
			})
			reportBatchStats(b, db)
		})
	}
}

// BenchmarkApplyParallel is the group-commit headline number: many
// goroutines committing single-cell transactions concurrently, in memory
// and under SyncAlways durability. Compare against the serial
// BenchmarkDurableCommit variants to see the batching win; txns/block
// reports the observed batch size.
func BenchmarkApplyParallel(b *testing.B) {
	open := benchOpeners()
	for _, name := range []string{"memory", "always"} {
		for _, par := range []int{4, 16} {
			goroutines := par * runtime.GOMAXPROCS(0) // what SetParallelism actually runs
			b.Run(fmt.Sprintf("%s/goroutines=%d", name, goroutines), func(b *testing.B) {
				db := open[name](b)
				defer db.Close()
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if err := benchCommit(db); err != nil {
							b.Fatal(err)
						}
					}
				})
				reportBatchStats(b, db)
			})
		}
	}
}

func reportBatchStats(b *testing.B, db *spitz.DB) {
	b.Helper()
	st := db.Stats().Batch
	if st.Blocks > 0 {
		b.ReportMetric(st.MeanTxns(), "txns/block")
	}
}
