package spitz

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"spitz/internal/ledger"
	"spitz/internal/obs"
	"spitz/internal/query"
	"spitz/internal/wire"
)

// Query parses and executes one statement against the server.
//
// SELECT runs verified: the server executes the statement against a
// single ledger snapshot and returns the scan cells together with one
// aggregated batch proof. The client re-derives the plan's canonical
// proof obligations from the statement it sent — one range proof per
// covered column for pk-interval scans (the row set is proven COMPLETE),
// one point proof per (pk, column) pair for point and index lookups —
// and rebuilds the result exclusively from proven values, so the server
// can neither alter a row nor, for range plans, omit one. Aggregates
// (COUNT/SUM) are re-folded locally from the proven cells. Under
// AuditMode the result is accepted optimistically and the obligations
// are audited in batch (see AuditMode).
//
// INSERT, UPDATE and DELETE execute on the server and report
// RowsAffected plus the committed block height; HISTORY returns version
// rows (unverified, like Client.History).
func (cl *Client) Query(statement string) (QueryResult, error) {
	stmt, err := query.Parse(statement)
	if err != nil {
		return QueryResult{}, err
	}
	switch s := stmt.(type) {
	case query.Select:
		pl, err := query.PlanOf(s)
		if err != nil {
			return QueryResult{}, err
		}
		if a := cl.auditor(); a != nil {
			return cl.link().queryOptimistic(a, 0, statement, pl)
		}
		return cl.link().queryVerified(statement, pl)
	case query.History:
		return cl.link().queryHistory(statement, s)
	default:
		return cl.link().queryMutate(statement)
	}
}

// Query executes one statement against the cluster. Mutations route
// through the coordinator (cross-shard batches commit with two-phase
// commit); point SELECTs and HISTORY go to the owning shard; range,
// lookup and aggregate SELECTs fan out across every shard — each
// shard's slice of the result is proven against that shard's own
// trusted digest — and merge: rows interleave in pk order, COUNT and
// SUM partials add up (the shards partition the key space, so per-shard
// aggregates are disjoint). See Client.Query for the verification
// model.
func (sc *ShardedClient) Query(statement string) (QueryResult, error) {
	stmt, err := query.Parse(statement)
	if err != nil {
		return QueryResult{}, err
	}
	switch s := stmt.(type) {
	case query.Select:
		pl, err := query.PlanOf(s)
		if err != nil {
			return QueryResult{}, err
		}
		if pl.Kind == query.PlanPoint {
			si := sc.ShardFor([]byte(s.PK))
			if a := sc.auditor(); a != nil {
				return sc.link(si).queryOptimistic(a, si, statement, pl)
			}
			return sc.link(si).queryVerified(statement, pl)
		}
		return sc.queryFanOut(statement, pl)
	case query.History:
		return sc.linkFor([]byte(s.PK)).queryHistory(statement, s)
	default:
		// Any connection reaches the coordinator, which routes the
		// mutation by what it does, not by a client-chosen shard.
		return sc.link(0).queryMutate(statement)
	}
}

// Query executes one statement with the replicated client's routing:
// SELECT and HISTORY are served by a replica (with primary-anchored
// trust, failing over like GetVerified); mutations go to the primary.
func (rc *ReplicatedClient) Query(statement string) (QueryResult, error) {
	stmt, err := query.Parse(statement)
	if err != nil {
		return QueryResult{}, err
	}
	switch s := stmt.(type) {
	case query.Select:
		pl, err := query.PlanOf(s)
		if err != nil {
			return QueryResult{}, err
		}
		aud := rc.auditor()
		var out QueryResult
		err = rc.doRead(func(l shardLink) error {
			var err error
			if aud != nil {
				out, err = l.queryOptimistic(aud, 0, statement, pl)
			} else {
				out, err = l.queryVerified(statement, pl)
			}
			return err
		})
		return out, err
	case query.History:
		var out QueryResult
		err = rc.doRead(func(l shardLink) error {
			var err error
			out, err = l.queryHistory(statement, s)
			return err
		})
		return out, err
	default:
		return rc.primaryLink().queryMutate(statement)
	}
}

// queryFanOut scatters a range, lookup or aggregate SELECT across every
// shard and merges the per-shard verified results.
func (sc *ShardedClient) queryFanOut(statement string, pl query.Plan) (QueryResult, error) {
	var parts []QueryResult
	var err error
	if a := sc.auditor(); a != nil {
		parts, err = sc.queryAll(func(i int, l shardLink) (QueryResult, error) {
			return l.queryOptimistic(a, i, statement, pl)
		})
	} else {
		// One root span owns the scatter; each shard's verified read
		// becomes a child leg under a single trace ID.
		tr := obs.DefaultTracer.Root("client.query-verified", "client")
		defer tr.Finish()
		parts, err = sc.queryAll(func(i int, l shardLink) (QueryResult, error) {
			l.tr = tr
			return l.queryVerified(statement, pl)
		})
	}
	return mergeQueryResults(pl, parts, err)
}

// queryAll runs fn for every shard concurrently.
func (sc *ShardedClient) queryAll(fn func(i int, l shardLink) (QueryResult, error)) ([]QueryResult, error) {
	parts := make([]QueryResult, len(sc.conns))
	errs := make([]error, len(sc.conns))
	var wg sync.WaitGroup
	for i := range sc.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = fn(i, sc.link(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// mergeQueryResults folds per-shard results into one: aggregate partials
// add (the shards partition the key space), rows merge into pk order.
func mergeQueryResults(pl query.Plan, parts []QueryResult, err error) (QueryResult, error) {
	if err != nil {
		return QueryResult{}, err
	}
	if pl.Sel.Agg != "" {
		var n uint64
		for _, p := range parts {
			n += p.AggValue
		}
		return QueryResult{AggValue: n, HasAgg: true}, nil
	}
	var rows []QueryRow
	for _, p := range parts {
		rows = append(rows, p.Rows...)
	}
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].PK, rows[j].PK) < 0 })
	return QueryResult{Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// Per-link query flows

// queryVerified is the eager verified SELECT: the statement executes
// server-side against one ledger snapshot, and the response carries the
// scan cells, the digest and an aggregated batch proof. The plan was
// derived client-side from the statement the client itself sent, so the
// obligations the proof must discharge — which ranges, which keys — are
// not the server's to choose, and the result is rebuilt exclusively
// from the proven values (ResultFromProof); the unproven response cells
// only seed the obligation derivation for lookup plans and `SELECT *`.
func (l shardLink) queryVerified(statement string, pl query.Plan) (QueryResult, error) {
	tr := l.span("client.query-verified")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpQuery, Statement: statement, Shard: l.shard}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	if err := l.checkEmptyReplica(resp.Digest); err != nil {
		return QueryResult{}, err
	}
	if resp.BatchProof == nil {
		return l.acceptProofless(pl, resp)
	}
	if err := l.syncAndVerifyBatch(tr, resp.Digest, resp.BatchProof,
		len(pl.Queries(resp.Cells))); err != nil {
		return QueryResult{}, err
	}
	out, err := pl.ResultFromProof(resp.Cells, resp.BatchProof)
	if err != nil {
		return QueryResult{}, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return out, nil
}

// acceptProofless decides whether a SELECT response without a batch
// proof is acceptable. Only two claims are: the ledger is empty (height
// 0 — rejected once the client trusts a non-empty one, so an existing
// database cannot masquerade as empty), or the plan derives zero proof
// obligations from the response — an unprovable empty: an index lookup
// with no candidate rows, or a `SELECT *` that surfaced no columns.
// Anything else is a server withholding proof.
func (l shardLink) acceptProofless(pl query.Plan, resp wire.Response) (QueryResult, error) {
	if resp.Digest.Height == 0 {
		if len(resp.Cells) > 0 {
			return QueryResult{}, fmt.Errorf("%w: rows claimed against an empty ledger", ErrTampered)
		}
		if err := l.checkEmptyClaim(); err != nil {
			return QueryResult{}, err
		}
		return pl.ResultFromCells(nil)
	}
	if len(pl.Queries(resp.Cells)) > 0 {
		return QueryResult{}, fmt.Errorf("%w: server omitted proof", ErrTampered)
	}
	return pl.ResultFromCells(resp.Cells)
}

// syncAndVerifyBatch is syncAndVerify for aggregated batch proofs: the
// same digest-advance flow, ending in a batch check against the current
// trusted digest or against d once d is proven a prefix of it.
func (l shardLink) syncAndVerifyBatch(tr *obs.Trace, d Digest, p *ledger.BatchProof, reads int) error {
	return l.syncAndVerifyWith(tr, d,
		func() error { return l.v.VerifyBatchNow(*p, reads) },
		func() error { return l.v.VerifyBatchAsOf(*p, d, reads) })
}

// queryOptimistic is AuditMode's SELECT: the statement executes
// server-side with no proof work (Request.Deferred), the result is
// accepted optimistically, and one receipt per canonical proof
// obligation is enqueued — the audit flush then proves exactly the
// ranges and keys the plan demands, with the same range binding as the
// eager path, so a row omitted from a pk-interval scan still fails its
// audit.
func (l shardLink) queryOptimistic(a *Auditor, shard int, statement string, pl query.Plan) (QueryResult, error) {
	if err := a.poisoned(); err != nil {
		return QueryResult{}, err
	}
	tr := l.span("client.query-optimistic")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpQuery, Statement: statement, Shard: l.shard, Deferred: true}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	if err := l.checkEmptyReplica(resp.Digest); err != nil {
		return QueryResult{}, err
	}
	if resp.Digest.Height == 0 {
		if len(resp.Cells) > 0 {
			return QueryResult{}, fmt.Errorf("%w: rows claimed against an empty ledger", ErrTampered)
		}
		if err := l.checkEmptyClaim(); err != nil {
			return QueryResult{}, err
		}
		return pl.ResultFromCells(nil)
	}
	if err := l.checkOptimisticLag(resp.Digest); err != nil {
		return QueryResult{}, err
	}
	if queries := pl.Queries(resp.Cells); len(queries) > 0 {
		l.v.NoteDeferred(len(queries))
		for _, q := range queries {
			if !a.add(queryReceipt(shard, resp.Digest, q, resp.Cells)) {
				return QueryResult{}, errAuditClosed
			}
		}
	}
	return pl.ResultFromCells(resp.Cells)
}

// queryReceipt shapes one proof obligation and the response cells it
// covers into an audit receipt: a range obligation commits the full
// per-column result slice (scan order), a point obligation commits the
// one value the server claimed (or its absence). The flush's batch
// proof then replays each obligation against the ledger and compares.
func queryReceipt(shard int, d Digest, q ledger.BatchQuery, cells []Cell) auditReceipt {
	if q.Range {
		var colCells []Cell
		for _, c := range cells {
			if c.Table == q.Table && c.Column == q.Column {
				colCells = append(colCells, c)
			}
		}
		return auditReceipt{shard: shard, digest: d, query: q,
			found: len(colCells) > 0, hash: auditCellsHash(colCells)}
	}
	var value []byte
	found := false
	for _, c := range cells {
		if c.Table == q.Table && c.Column == q.Column && bytes.Equal(c.PK, q.PK) {
			value, found = c.Value, true
			break
		}
	}
	return auditReceipt{shard: shard, digest: d, query: q, found: found,
		hash: auditValueHash(value)}
}

// queryMutate runs a mutation statement over the wire. The commit is
// unverified at this point — it lands in the ledger, where any later
// verified read (or audit) proves it.
func (l shardLink) queryMutate(statement string) (QueryResult, error) {
	tr := l.span("client.query-exec")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpQuery, Statement: statement, Shard: l.shard}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{RowsAffected: resp.RowsAffected, Block: resp.Height}, nil
}

// queryHistory fetches a cell's version history shaped into HISTORY
// rows (unverified, matching Client.History).
func (l shardLink) queryHistory(statement string, h query.History) (QueryResult, error) {
	tr := l.span("client.query-history")
	defer tr.Finish()
	req := wire.Request{Op: wire.OpQuery, Statement: statement, Shard: l.shard}
	req.SetTrace(tr)
	resp, err := l.c.Do(req)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Rows: query.HistoryRows(h.Column, resp.Cells)}, nil
}
