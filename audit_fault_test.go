package spitz_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"spitz"
	"spitz/internal/core"
	"spitz/internal/wire"
)

// Fault-injection suite for the verified-read path (eager and deferred):
// a wire transport that can delay, drop and bit-flip responses, plus a
// structured mutator that corrupts individual proof bytes. The invariant
// under test is zero silent acceptance: every injected tamper across
// point, range and batch proofs is reported — proof corruption as
// ErrTampered, transport corruption as an error of some kind — and a
// client never returns wrong data as verified.

// faultServer is an engine served through a response mutator and a
// faulty listener.
type faultServer struct {
	eng   *core.Engine
	inner net.Listener // dial target; accepts route through ln's fault wrapping
	ln    *wire.FaultListener
	srv   *wire.Server

	mu     sync.Mutex
	mutate func(req wire.Request, resp *wire.Response)
}

func startFaultServer(t *testing.T) *faultServer {
	t.Helper()
	fs := &faultServer{eng: core.New(core.Options{})}
	for i := 0; i < 40; i++ {
		if _, err := fs.eng.Apply("seed", []core.Put{{Table: "t", Column: "c",
			PK: []byte(fmt.Sprintf("pk%03d", i)), Value: []byte(fmt.Sprintf("value-%03d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	fs.inner, _ = wire.Listen()
	fs.ln = wire.NewFaultListener(fs.inner)
	fs.srv = wire.NewHandlerServer(wire.MutateHandler(wire.EngineHandler(fs.eng),
		func(req wire.Request, resp *wire.Response) {
			fs.mu.Lock()
			m := fs.mutate
			fs.mu.Unlock()
			if m != nil {
				m(req, resp)
			}
		}))
	go fs.srv.Serve(fs.ln)
	t.Cleanup(func() { fs.srv.Close() })
	return fs
}

func (fs *faultServer) setMutate(m func(req wire.Request, resp *wire.Response)) {
	fs.mu.Lock()
	fs.mutate = m
	fs.mu.Unlock()
}

// client dials the inner listener (the server accepts through the fault
// wrapper, so the server-side conn carries the faults).
func (fs *faultServer) client(t *testing.T) *spitz.Client {
	t.Helper()
	wc, err := wire.Connect(fs.inner)
	if err != nil {
		t.Fatal(err)
	}
	return spitz.NewClient(wc)
}

// auditReads issues the canonical receipt mix — point hits, a point
// miss, and a range — on an AuditMode client and returns the auditor.
func auditReads(t *testing.T, cl *spitz.Client) *spitz.Auditor {
	t.Helper()
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if v, found, err := cl.GetVerified("t", "c", []byte("pk001")); err != nil || !found || string(v) != "value-001" {
		t.Fatalf("point read: %q %v %v", v, found, err)
	}
	if _, found, err := cl.GetVerified("t", "c", []byte("pk007")); err != nil || !found {
		t.Fatalf("point read 2: %v %v", found, err)
	}
	if _, found, err := cl.GetVerified("t", "c", []byte("absent")); err != nil || found {
		t.Fatalf("miss read: %v %v", found, err)
	}
	if cells, err := cl.RangePKVerified("t", "c", []byte("pk010"), []byte("pk015")); err != nil || len(cells) != 5 {
		t.Fatalf("range read: %d %v", len(cells), err)
	}
	return aud
}

// detachResponse deep-copies a response via a gob round trip before the
// mutator flips bytes in it: served proof nodes alias the server's
// content-addressed store (that sharing is the point of the proof
// cache), so in-place flips would corrupt the server itself instead of
// simulating corruption on the wire.
func detachResponse(t testing.TB, resp *wire.Response) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatalf("detach encode: %v", err)
	}
	var out wire.Response
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("detach decode: %v", err)
	}
	*resp = out
}

// batchProofByteSlices enumerates every mutable byte slice of an
// OpProveBatch response, in a stable order, so the tamper sweep can
// address "byte k of the batch proof" uniformly.
func batchProofByteSlices(resp *wire.Response) [][]byte {
	var out [][]byte
	bp := resp.BatchProof
	if bp == nil {
		return nil
	}
	if bp.Points != nil {
		out = append(out, bp.Points.Nodes...)
		for _, v := range bp.Points.Values {
			if len(v) > 0 {
				out = append(out, v)
			}
		}
		out = append(out, bp.Points.Keys...)
	}
	for i := range bp.Ranges {
		out = append(out, bp.Ranges[i].Nodes...)
		out = append(out, bp.Ranges[i].Start, bp.Ranges[i].End)
	}
	for i := range bp.Inclusion.Path {
		out = append(out, bp.Inclusion.Path[i][:])
	}
	out = append(out, resp.Digest.Root[:])
	if resp.Consistency2 != nil {
		for i := range resp.Consistency2.Path {
			out = append(out, resp.Consistency2.Path[i][:])
		}
	}
	return out
}

// TestFaultEveryBatchProofByteTrips is the core zero-silent-acceptance
// sweep: every byte of the batch proof (node bodies, values, keys, range
// bounds, inclusion and prefix-proof hashes, the digest root) is flipped
// in turn, and every single flip must surface as ErrTampered at the
// flush — never a pass.
func TestFaultEveryBatchProofByteTrips(t *testing.T) {
	fs := startFaultServer(t)

	// First pass: count the proof bytes with an honest flush.
	var total int
	fs.setMutate(func(req wire.Request, resp *wire.Response) {
		if req.Op == wire.OpProveBatch {
			for _, s := range batchProofByteSlices(resp) {
				total += len(s)
			}
		}
	})
	cl := fs.client(t)
	aud := auditReads(t, cl)
	if err := aud.Flush(); err != nil {
		t.Fatalf("honest flush failed: %v", err)
	}
	cl.Close()
	if total == 0 {
		t.Fatal("no proof bytes enumerated")
	}
	t.Logf("sweeping %d batch-proof bytes", total)

	step := 1
	if testing.Short() {
		step = 17
	}
	for off := 0; off < total; off += step {
		off := off
		fs.setMutate(func(req wire.Request, resp *wire.Response) {
			if req.Op != wire.OpProveBatch {
				return
			}
			detachResponse(t, resp)
			k := off
			for _, s := range batchProofByteSlices(resp) {
				if k < len(s) {
					s[k] ^= 0x01
					return
				}
				k -= len(s)
			}
		})
		cl := fs.client(t)
		aud := auditReads(t, cl)
		err := aud.Flush()
		if err == nil {
			t.Fatalf("byte %d: tampered batch proof passed silently", off)
		}
		if !errors.Is(err, spitz.ErrTampered) {
			t.Fatalf("byte %d: tamper misreported as %v", off, err)
		}
		// Poisoning: once tampering is detected, further optimistic reads
		// refuse rather than keep accepting.
		if _, _, rerr := cl.GetVerified("t", "c", []byte("pk001")); !errors.Is(rerr, spitz.ErrTampered) {
			t.Fatalf("byte %d: poisoned client kept reading: %v", off, rerr)
		}
		cl.Close()
	}
	fs.setMutate(nil)
}

// TestFaultStructuredBatchForgeries covers the non-byte-flip forgeries a
// lying server could attempt on a batch: substituted values, toggled
// found flags, swapped answers, dropped proofs, a proof for a different
// (honest, older) digest, and omitted consistency proofs — all
// ErrTampered, table-driven.
func TestFaultStructuredBatchForgeries(t *testing.T) {
	fs := startFaultServer(t)
	cases := []struct {
		name string
		mut  func(resp *wire.Response)
	}{
		{"toggle first found flag", func(r *wire.Response) {
			r.BatchProof.Points.Found[0] = false
			r.BatchProof.Points.Values[0] = nil
		}},
		{"forge presence of the miss", func(r *wire.Response) {
			for i, f := range r.BatchProof.Points.Found {
				if !f {
					r.BatchProof.Points.Found[i] = true
					r.BatchProof.Points.Values[i] = []byte("\x00\x01forged")
				}
			}
		}},
		{"swap two point answers", func(r *wire.Response) {
			p := r.BatchProof.Points
			p.Values[0], p.Values[1] = p.Values[1], p.Values[0]
		}},
		{"drop the range proof", func(r *wire.Response) { r.BatchProof.Ranges = nil }},
		{"narrow the proven range", func(r *wire.Response) {
			rp := &r.BatchProof.Ranges[0]
			rp.End = append([]byte(nil), rp.Start...)
			rp.Entries = nil
			rp.Nodes = rp.Nodes[:1]
		}},
		{"drop a range entry", func(r *wire.Response) {
			rp := &r.BatchProof.Ranges[0]
			rp.Entries = rp.Entries[:len(rp.Entries)-1]
		}},
		{"omit the prefix proof", func(r *wire.Response) { r.Consistency2 = nil }},
		{"omit the batch proof", func(r *wire.Response) { r.BatchProof = nil }},
		{"stale block binding", func(r *wire.Response) { r.BatchProof.Header.Height++ }},
		{"inflate inclusion tree", func(r *wire.Response) { r.BatchProof.Inclusion.TreeSize++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs.setMutate(func(req wire.Request, resp *wire.Response) {
				if req.Op == wire.OpProveBatch {
					tc.mut(resp)
				}
			})
			defer fs.setMutate(nil)
			cl := fs.client(t)
			defer cl.Close()
			aud := auditReads(t, cl)
			err := aud.Flush()
			if err == nil {
				t.Fatalf("%s: passed silently", tc.name)
			}
			if !errors.Is(err, spitz.ErrTampered) {
				t.Fatalf("%s: misreported as %v", tc.name, err)
			}
		})
	}
}

// TestFaultEagerProofBytesTrip sweeps byte flips over the eager path's
// point and range proofs too (table-driven over the op kinds), so both
// verification modes share the zero-silent-acceptance guarantee.
func TestFaultEagerProofBytesTrip(t *testing.T) {
	fs := startFaultServer(t)
	kinds := []struct {
		name   string
		op     wire.Op
		read   func(cl *spitz.Client) error
		slices func(resp *wire.Response) [][]byte
	}{
		{
			name: "point",
			op:   wire.OpGetVerified,
			read: func(cl *spitz.Client) error {
				_, _, err := cl.GetVerified("t", "c", []byte("pk003"))
				return err
			},
			slices: func(resp *wire.Response) [][]byte {
				var out [][]byte
				out = append(out, resp.Proof.Point.Nodes...)
				if len(resp.Proof.Point.Value) > 0 {
					out = append(out, resp.Proof.Point.Value)
				}
				for i := range resp.Proof.Inclusion.Path {
					out = append(out, resp.Proof.Inclusion.Path[i][:])
				}
				out = append(out, resp.Digest.Root[:])
				return out
			},
		},
		{
			name: "range",
			op:   wire.OpRangeVer,
			read: func(cl *spitz.Client) error {
				_, err := cl.RangePKVerified("t", "c", []byte("pk020"), []byte("pk025"))
				return err
			},
			slices: func(resp *wire.Response) [][]byte {
				var out [][]byte
				out = append(out, resp.Proof.Range.Nodes...)
				out = append(out, resp.Proof.Range.Start, resp.Proof.Range.End)
				for i := range resp.Proof.Inclusion.Path {
					out = append(out, resp.Proof.Inclusion.Path[i][:])
				}
				return out
			},
		},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			var total int
			fs.setMutate(func(req wire.Request, resp *wire.Response) {
				if req.Op == kind.op && resp.Proof != nil {
					total = 0
					for _, s := range kind.slices(resp) {
						total += len(s)
					}
				}
			})
			cl := fs.client(t)
			if err := kind.read(cl); err != nil {
				t.Fatalf("honest read failed: %v", err)
			}
			cl.Close()
			if total == 0 {
				t.Fatal("no proof bytes enumerated")
			}
			step := 1
			if testing.Short() {
				step = 17
			}
			for off := 0; off < total; off += step {
				off := off
				fs.setMutate(func(req wire.Request, resp *wire.Response) {
					if req.Op != kind.op || resp.Proof == nil {
						return
					}
					detachResponse(t, resp)
					k := off
					for _, s := range kind.slices(resp) {
						if k < len(s) {
							s[k] ^= 0x01
							return
						}
						k -= len(s)
					}
				})
				cl := fs.client(t)
				err := kind.read(cl)
				if err == nil {
					t.Fatalf("%s byte %d: tampered proof passed silently", kind.name, off)
				}
				if !errors.Is(err, spitz.ErrTampered) {
					t.Fatalf("%s byte %d: misreported as %v", kind.name, off, err)
				}
				cl.Close()
			}
			fs.setMutate(nil)
		})
	}
}

// TestFaultTransportDelayDropFlip exercises the connection-level faults:
// delays must not affect correctness, drops must surface as transport
// errors (and unverified receipts must fail Close), and raw-stream bit
// flips must never let wrong data through as verified.
func TestFaultTransportDelayDropFlip(t *testing.T) {
	fs := startFaultServer(t)

	t.Run("delay is harmless", func(t *testing.T) {
		fs.ln.SetFaults(wire.Faults{Delay: 2 * time.Millisecond})
		defer fs.ln.SetFaults(wire.Faults{})
		cl := fs.client(t)
		defer cl.Close()
		aud := auditReads(t, cl)
		if err := aud.Flush(); err != nil {
			t.Fatalf("delayed flush failed: %v", err)
		}
	})

	t.Run("drop mid-response is loud", func(t *testing.T) {
		fs.ln.SetFaults(wire.Faults{CloseAfter: 40})
		defer fs.ln.SetFaults(wire.Faults{})
		wc, err := wire.Connect(fs.inner)
		if err != nil {
			t.Fatal(err)
		}
		cl := spitz.NewClient(wc)
		defer cl.Close()
		if _, _, err := cl.GetVerified("t", "c", []byte("pk001")); err == nil {
			t.Fatal("read over a dropped connection passed silently")
		} else if !errors.Is(err, wire.ErrTransport) {
			t.Fatalf("drop misreported as %v", err)
		}
	})

	t.Run("raw stream flips never yield wrong verified data", func(t *testing.T) {
		// Measure one response stream, then flip each offset (sampled) on
		// fresh connections. Any outcome is acceptable except returning a
		// wrong value without error.
		probe := func(off int64) (value string, found bool, err error) {
			fs.ln.SetFaults(wire.Faults{FlipEnabled: off >= 0, FlipOffset: off})
			defer fs.ln.SetFaults(wire.Faults{})
			wc, cerr := wire.Connect(fs.inner)
			if cerr != nil {
				return "", false, cerr
			}
			cl := spitz.NewClient(wc)
			defer cl.Close()
			v, ok, rerr := cl.GetVerified("t", "c", []byte("pk005"))
			return string(v), ok, rerr
		}
		wantValue, wantFound, err := probe(-1)
		if err != nil || !wantFound || wantValue != "value-005" {
			t.Fatalf("honest probe: %q %v %v", wantValue, wantFound, err)
		}
		// The response stream is a few hundred bytes; sweep a prefix that
		// covers the gob type section and the whole first response.
		for off := int64(0); off < 700; off += 3 {
			v, ok, err := probe(off)
			if err == nil && ok && v != wantValue {
				t.Fatalf("offset %d: wrong value %q returned as verified", off, v)
			}
			if err == nil && !ok {
				t.Fatalf("offset %d: presence silently flipped to absence", off)
			}
		}
	})
}

var _ net.Listener = (*wire.FaultListener)(nil)

// TestFaultLieNowCommitLater reproduces the strongest deferred-mode
// attack: the server forges a value at read time (digest honest), then
// actually commits the forged value in a later block and answers the
// audit with a proof anchored at that later block — self-consistent
// inclusion, honest prefix proof, values matching the receipts. The
// audit must reject it: receipts were read at digest d, so the proof
// must be for block d.Height-1, not for a block the server wrote after
// the fact.
func TestFaultLieNowCommitLater(t *testing.T) {
	fs := startFaultServer(t)
	target := benchKey996()

	// Phase 1: forge the value of one read, digest untouched.
	fs.setMutate(func(req wire.Request, resp *wire.Response) {
		if req.Op == wire.OpGet && string(req.PK) == string(target) {
			resp.Value = []byte("forged")
		}
	})
	cl := fs.client(t)
	defer cl.Close()
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := cl.GetVerified("t", "c", target)
	if err != nil || !found || string(v) != "forged" {
		t.Fatalf("forged read did not reach the client: %q %v %v", v, found, err)
	}

	// Phase 2: the server commits the forged value for real.
	if _, err := fs.eng.Apply("cover-up", []core.Put{{Table: "t", Column: "c",
		PK: target, Value: []byte("forged")}}); err != nil {
		t.Fatal(err)
	}

	// Phase 3: answer the audit with a proof at the NEW head block, with
	// an honest prefix proof for the receipts' digest.
	fs.setMutate(func(req wire.Request, resp *wire.Response) {
		if req.Op != wire.OpProveBatch || req.OldDigest2 == nil {
			return
		}
		cur, cons2, err := fs.eng.ConsistencyUpdate(*req.OldDigest2)
		if err != nil {
			t.Errorf("malicious cons2: %v", err)
			return
		}
		res, err := fs.eng.ProveBatch(req.OldDigest, cur, req.Audits)
		if err != nil {
			t.Errorf("malicious prove: %v", err)
			return
		}
		*resp = wire.Response{Digest: res.Digest, Consistency: &res.ConsTrusted,
			Consistency2: &cons2, BatchProof: &res.Proof}
	})
	err = aud.Flush()
	if err == nil {
		t.Fatal("lie-now-commit-later audit passed silently")
	}
	if !errors.Is(err, spitz.ErrTampered) {
		t.Fatalf("misreported as %v", err)
	}
}

// benchKey996 names the target key of the lie-now-commit-later probe.
func benchKey996() []byte { return []byte("pk030") }

// TestFaultForgedEmptyLedger: once the client trusts a non-empty
// ledger, a server that claims to be empty (making any key or range
// appear absent, with no receipt ever enqueued) must be rejected as
// tampering, not silently accepted as not-found.
func TestFaultForgedEmptyLedger(t *testing.T) {
	fs := startFaultServer(t)
	cl := fs.client(t)
	defer cl.Close()
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Pin trust through one honest audited read + flush.
	if _, found, err := cl.GetVerified("t", "c", []byte("pk001")); err != nil || !found {
		t.Fatalf("honest read: %v %v", found, err)
	}
	if err := aud.Flush(); err != nil {
		t.Fatal(err)
	}
	// Now the server pretends to be empty.
	fs.setMutate(func(req wire.Request, resp *wire.Response) {
		if req.Op == wire.OpGet || req.Op == wire.OpRange {
			*resp = wire.Response{}
		}
	})
	defer fs.setMutate(nil)
	if _, _, err := cl.GetVerified("t", "c", []byte("pk001")); !errors.Is(err, spitz.ErrTampered) {
		t.Fatalf("forged-empty point read accepted: %v", err)
	}
	if _, err := cl.RangePKVerified("t", "c", []byte("pk010"), []byte("pk015")); !errors.Is(err, spitz.ErrTampered) {
		t.Fatalf("forged-empty range read accepted: %v", err)
	}
}

// TestFaultReadAfterAuditorClose: an optimistic read that completes
// after the auditor closed cannot leave a receipt nothing will verify —
// it must fail instead of returning unaudited data.
func TestFaultReadAfterAuditorClose(t *testing.T) {
	fs := startFaultServer(t)
	cl := fs.client(t)
	aud, err := cl.StartAudit(spitz.AuditMode{MaxPending: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := cl.GetVerified("t", "c", []byte("pk001")); err != nil || !found {
		t.Fatalf("pre-close read: %v %v", found, err)
	}
	if err := aud.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, _, err := cl.GetVerified("t", "c", []byte("pk001")); err == nil {
		t.Fatal("read after auditor close returned unaudited data silently")
	}
	if _, err := cl.RangePKVerified("t", "c", []byte("pk010"), []byte("pk015")); err == nil {
		t.Fatal("range after auditor close returned unaudited data silently")
	}
	// Errors channel is closed (a ranging consumer terminates).
	if _, ok := <-aud.Errors(); ok {
		t.Fatal("Errors channel delivered after clean close")
	}
}
